//===- tests/pcfg/EngineTest.cpp - Full pCFG analysis tests -------------------===//
//
// End-to-end tests of the Figure 4 dataflow engine on the paper's corpus,
// cross-validated against the concrete interpreter: for every converged
// analysis, the set of statically matched (send node, recv node) pairs must
// equal the dynamically observed pairs (the paper's exact-matching claim).
//
//===----------------------------------------------------------------------===//

#include "pcfg/Engine.h"

#include "cfg/CfgBuilder.h"
#include "interp/Interpreter.h"
#include "lang/Corpus.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace csdf;

namespace {

struct Built {
  Program Prog;
  Cfg Graph;
};

Built buildFrom(const std::string &Source) {
  Built B;
  B.Prog = parseProgramOrDie(Source);
  B.Graph = buildCfg(B.Prog);
  return B;
}

std::set<std::pair<CfgNodeId, CfgNodeId>>
dynamicPairs(const Cfg &Graph, int NumProcs,
             std::map<std::string, std::int64_t> Params = {}) {
  RunOptions Opts;
  Opts.NumProcs = NumProcs;
  Opts.Params = std::move(Params);
  RunResult R = runProgram(Graph, Opts);
  EXPECT_TRUE(R.finished()) << R.Error;
  std::set<std::pair<CfgNodeId, CfgNodeId>> Pairs;
  for (const TraceEvent &E : R.Trace)
    Pairs.insert({E.SendNode, E.RecvNode});
  return Pairs;
}

std::string describe(const AnalysisResult &R, const Cfg &Graph) {
  std::string S = R.Converged ? "converged" : ("TOP: " + R.TopReason);
  S += "\nmatches:\n";
  for (const MatchRecord &M : R.Matches)
    S += "  " + Graph.nodeLabel(M.SendNode) + "  ->  " +
         Graph.nodeLabel(M.RecvNode) + "   " + M.SenderRange + " -> " +
         M.ReceiverRange + "\n";
  for (const AnalysisBug &B : R.Bugs)
    S += std::string("bug: ") + analysisBugKindName(B.TheKind) + ": " +
         B.Detail + "\n";
  return S;
}

//===----------------------------------------------------------------------===//
// Figure 2: constant propagation through matched sends (E1)
//===----------------------------------------------------------------------===//

TEST(EngineTest, Figure2ExchangeConvergesWithTwoMatches) {
  Built B = buildFrom(corpus::figure2Exchange());
  AnalysisResult R = analyzeProgram(B.Graph, AnalysisOptions::simpleSymbolic());
  ASSERT_TRUE(R.Converged) << describe(R, B.Graph);
  EXPECT_EQ(R.matchedNodePairs().size(), 2u) << describe(R, B.Graph);
  EXPECT_EQ(R.matchedNodePairs(), dynamicPairs(B.Graph, 8));
}

TEST(EngineTest, Figure2BothProcessesProvablyPrintFive) {
  Built B = buildFrom(corpus::figure2Exchange());
  AnalysisResult R = analyzeProgram(B.Graph, AnalysisOptions::simpleSymbolic());
  ASSERT_TRUE(R.Converged) << describe(R, B.Graph);
  // Two print statements, each with the provable constant 5.
  unsigned ProvedFive = 0;
  std::set<CfgNodeId> Nodes;
  for (const PrintFact &F : R.PrintFacts)
    if (F.Value == 5) {
      ++ProvedFive;
      Nodes.insert(F.Node);
    }
  EXPECT_GE(ProvedFive, 2u) << describe(R, B.Graph);
  EXPECT_EQ(Nodes.size(), 2u);
}

//===----------------------------------------------------------------------===//
// Figures 1/5: root patterns (E2)
//===----------------------------------------------------------------------===//

TEST(EngineTest, FanOutBroadcastConverges) {
  Built B = buildFrom(corpus::fanOutBroadcast());
  AnalysisResult R = analyzeProgram(B.Graph, AnalysisOptions::simpleSymbolic());
  ASSERT_TRUE(R.Converged) << describe(R, B.Graph);
  EXPECT_EQ(R.matchedNodePairs().size(), 1u) << describe(R, B.Graph);
  EXPECT_EQ(R.matchedNodePairs(), dynamicPairs(B.Graph, 8));
}

TEST(EngineTest, GatherToRootConverges) {
  Built B = buildFrom(corpus::gatherToRoot());
  AnalysisResult R = analyzeProgram(B.Graph, AnalysisOptions::simpleSymbolic());
  ASSERT_TRUE(R.Converged) << describe(R, B.Graph);
  EXPECT_EQ(R.matchedNodePairs().size(), 1u) << describe(R, B.Graph);
  EXPECT_EQ(R.matchedNodePairs(), dynamicPairs(B.Graph, 8));
}

TEST(EngineTest, ExchangeWithRootConverges) {
  Built B = buildFrom(corpus::exchangeWithRoot());
  AnalysisResult R = analyzeProgram(B.Graph, AnalysisOptions::simpleSymbolic());
  ASSERT_TRUE(R.Converged) << describe(R, B.Graph);
  EXPECT_EQ(R.matchedNodePairs().size(), 2u) << describe(R, B.Graph);
  EXPECT_EQ(R.matchedNodePairs(), dynamicPairs(B.Graph, 8));
}

TEST(EngineTest, BroadcastThenGatherConverges) {
  // Two sequentially composed root loops: the worker set is handed off
  // from the broadcast phase to the gather phase. Keeping the set-extent
  // anchors exact across merges (no duplicate anchor variables) preserves
  // the `arrived == [1..i-1]` relation through both phases, so even the
  // per-iteration Figure 4 client converges symbolically.
  Built B = buildFrom(corpus::broadcastThenGather());
  AnalysisResult R = analyzeProgram(B.Graph, AnalysisOptions::simpleSymbolic());
  ASSERT_TRUE(R.Converged) << describe(R, B.Graph);
  EXPECT_EQ(R.matchedNodePairs().size(), 2u) << describe(R, B.Graph);
  EXPECT_EQ(R.matchedNodePairs(), dynamicPairs(B.Graph, 8));
}

//===----------------------------------------------------------------------===//
// Figure 6: cartesian transposes via HSMs (E3)
//===----------------------------------------------------------------------===//

TEST(EngineTest, TransposeSquareConvergesWithHsm) {
  Built B = buildFrom(corpus::transposeSquare());
  AnalysisResult R = analyzeProgram(B.Graph, AnalysisOptions::cartesian());
  ASSERT_TRUE(R.Converged) << describe(R, B.Graph);
  EXPECT_EQ(R.matchedNodePairs().size(), 1u) << describe(R, B.Graph);
  EXPECT_EQ(R.matchedNodePairs(),
            dynamicPairs(B.Graph, 16, {{"nrows", 4}}));
}

TEST(EngineTest, TransposeSquareTopsOutWithoutHsm) {
  // The Section VII client cannot match the transpose expressions.
  Built B = buildFrom(corpus::transposeSquare());
  AnalysisOptions Opts = AnalysisOptions::simpleSymbolic();
  Opts.Sends = SendSemantics::Buffered;
  AnalysisResult R = analyzeProgram(B.Graph, Opts);
  EXPECT_FALSE(R.Converged);
}

TEST(EngineTest, TransposeRectConvergesWithHsm) {
  Built B = buildFrom(corpus::transposeRect());
  AnalysisResult R = analyzeProgram(B.Graph, AnalysisOptions::cartesian());
  ASSERT_TRUE(R.Converged) << describe(R, B.Graph);
  EXPECT_EQ(R.matchedNodePairs().size(), 1u) << describe(R, B.Graph);
  EXPECT_EQ(R.matchedNodePairs(),
            dynamicPairs(B.Graph, 18, {{"nrows", 3}, {"ncols", 6}}));
}

TEST(EngineTest, NascgBothBranchesConverge) {
  Built B = buildFrom(corpus::nascgTranspose());
  AnalysisResult R = analyzeProgram(B.Graph, AnalysisOptions::cartesian());
  ASSERT_TRUE(R.Converged) << describe(R, B.Graph);
  // One matched pair per grid-shape branch.
  auto Pairs = R.matchedNodePairs();
  EXPECT_EQ(Pairs.size(), 2u) << describe(R, B.Graph);
  // Square run covers the first branch, rectangular the second.
  auto Square = dynamicPairs(B.Graph, 16, {{"nrows", 4}, {"ncols", 4}});
  auto Rect = dynamicPairs(B.Graph, 18, {{"nrows", 3}, {"ncols", 6}});
  std::set<std::pair<CfgNodeId, CfgNodeId>> Union = Square;
  Union.insert(Rect.begin(), Rect.end());
  EXPECT_EQ(Pairs, Union) << describe(R, B.Graph);
}

//===----------------------------------------------------------------------===//
// Figure 7: nearest-neighbor shift (E4)
//===----------------------------------------------------------------------===//

TEST(EngineTest, NeighborShiftConvergesAtFixedNp) {
  Built B = buildFrom(corpus::neighborShift());
  AnalysisOptions Opts = AnalysisOptions::cartesian();
  Opts.FixedNp = 6;
  AnalysisResult R = analyzeProgram(B.Graph, Opts);
  ASSERT_TRUE(R.Converged) << describe(R, B.Graph);
  EXPECT_EQ(R.matchedNodePairs(), dynamicPairs(B.Graph, 6))
      << describe(R, B.Graph);
  EXPECT_EQ(R.matchedNodePairs().size(), 3u);
}

TEST(EngineTest, NeighborShiftLeftConvergesAtFixedNp) {
  Built B = buildFrom(corpus::neighborShiftLeft());
  AnalysisOptions Opts = AnalysisOptions::cartesian();
  Opts.FixedNp = 6;
  AnalysisResult R = analyzeProgram(B.Graph, Opts);
  ASSERT_TRUE(R.Converged) << describe(R, B.Graph);
  EXPECT_EQ(R.matchedNodePairs(), dynamicPairs(B.Graph, 6))
      << describe(R, B.Graph);
}

TEST(EngineTest, Vshift2dConvergesWithPinnedGrid) {
  // Section VIII-C's d = 2 case: the partner expressions are
  // `id +- ncols`, which resolve to plain shifts once the grid is pinned.
  Built B = buildFrom(corpus::vshift2d());
  AnalysisOptions Opts = AnalysisOptions::cartesian();
  Opts.FixedNp = 12;
  Opts.Params = {{"nrows", 3}, {"ncols", 4}};
  AnalysisResult R = analyzeProgram(B.Graph, Opts);
  ASSERT_TRUE(R.Converged) << describe(R, B.Graph);
  EXPECT_EQ(R.matchedNodePairs(),
            dynamicPairs(B.Graph, 12, {{"nrows", 3}, {"ncols", 4}}))
      << describe(R, B.Graph);
}

TEST(EngineTest, Vshift2dInterpreterGroundTruth) {
  Built B = buildFrom(corpus::vshift2d());
  RunOptions Opts;
  Opts.NumProcs = 12;
  Opts.Params = {{"nrows", 3}, {"ncols", 4}};
  RunResult R = runProgram(B.Graph, Opts);
  ASSERT_TRUE(R.finished()) << R.Error;
  // Every non-top-row process received the value of the process one row
  // up (values are x = id).
  for (int Id = 4; Id < 12; ++Id)
    EXPECT_EQ(R.FinalVars[Id].at("y"), Id - 4) << Id;
  EXPECT_EQ(R.Trace.size(), 8u);
}

TEST(EngineTest, NeighborExchangeConvergesAtFixedNp) {
  Built B = buildFrom(corpus::neighborExchange1D());
  AnalysisOptions Opts = AnalysisOptions::cartesian();
  Opts.FixedNp = 5;
  AnalysisResult R = analyzeProgram(B.Graph, Opts);
  ASSERT_TRUE(R.Converged) << describe(R, B.Graph);
  EXPECT_EQ(R.matchedNodePairs(), dynamicPairs(B.Graph, 5))
      << describe(R, B.Graph);
}

//===----------------------------------------------------------------------===//
// Bug detection
//===----------------------------------------------------------------------===//

TEST(EngineTest, MessageLeakIsDetected) {
  Built B = buildFrom(corpus::messageLeak());
  AnalysisResult R = analyzeProgram(B.Graph, AnalysisOptions::cartesian());
  ASSERT_TRUE(R.Converged) << describe(R, B.Graph);
  EXPECT_TRUE(R.hasBug(AnalysisBug::Kind::MessageLeak))
      << describe(R, B.Graph);
}

TEST(EngineTest, HeadToHeadDeadlockIsDetected) {
  Built B = buildFrom(corpus::headToHeadDeadlock());
  AnalysisResult R = analyzeProgram(B.Graph, AnalysisOptions::simpleSymbolic());
  EXPECT_FALSE(R.Converged);
  EXPECT_TRUE(R.hasBug(AnalysisBug::Kind::PossibleDeadlock))
      << describe(R, B.Graph);
}

TEST(EngineTest, TagMismatchIsDetected) {
  Built B = buildFrom(corpus::tagMismatch());
  AnalysisResult R = analyzeProgram(B.Graph, AnalysisOptions::cartesian());
  EXPECT_FALSE(R.Converged);
  EXPECT_TRUE(R.hasBug(AnalysisBug::Kind::TagMismatch))
      << describe(R, B.Graph);
}

//===----------------------------------------------------------------------===//
// Honest Top on unsupported patterns (paper Section X limitations)
//===----------------------------------------------------------------------===//

TEST(EngineTest, RingShiftTopsOut) {
  Built B = buildFrom(corpus::ringShift());
  AnalysisResult Simple =
      analyzeProgram(B.Graph, AnalysisOptions::simpleSymbolic());
  EXPECT_FALSE(Simple.Converged);
  AnalysisResult Cart = analyzeProgram(B.Graph, AnalysisOptions::cartesian());
  EXPECT_FALSE(Cart.Converged);
}

TEST(EngineTest, PairwiseExchangeTopsOut) {
  // id % 2 branches produce strided process sets, which the range-based
  // abstraction cannot represent.
  Built B = buildFrom(corpus::pairwiseExchange());
  AnalysisResult R = analyzeProgram(B.Graph, AnalysisOptions::cartesian());
  EXPECT_FALSE(R.Converged);
}

//===----------------------------------------------------------------------===//
// Misc engine behaviour
//===----------------------------------------------------------------------===//

TEST(EngineTest, NoCommProgramConverges) {
  Built B = buildFrom(corpus::noComm());
  AnalysisResult R = analyzeProgram(B.Graph, AnalysisOptions::simpleSymbolic());
  ASSERT_TRUE(R.Converged) << describe(R, B.Graph);
  EXPECT_TRUE(R.Matches.empty());
  EXPECT_TRUE(R.Bugs.empty());
}

TEST(EngineTest, EmptyProgramConverges) {
  Built B = buildFrom("");
  AnalysisResult R = analyzeProgram(B.Graph, AnalysisOptions::simpleSymbolic());
  EXPECT_TRUE(R.Converged);
}

TEST(EngineTest, MapBackendGivesSameMatches) {
  Built B = buildFrom(corpus::exchangeWithRoot());
  AnalysisOptions Dense = AnalysisOptions::simpleSymbolic();
  AnalysisOptions Map = AnalysisOptions::simpleSymbolic();
  Map.Backend = DbmBackend::MapBased;
  AnalysisResult RD = analyzeProgram(B.Graph, Dense);
  AnalysisResult RM = analyzeProgram(B.Graph, Map);
  EXPECT_EQ(RD.Converged, RM.Converged);
  EXPECT_EQ(RD.Matches, RM.Matches);
}

TEST(EngineTest, FixedNpMatchesSymbolicOnBroadcast) {
  Built B = buildFrom(corpus::fanOutBroadcast());
  AnalysisOptions Opts = AnalysisOptions::simpleSymbolic();
  Opts.FixedNp = 8;
  AnalysisResult R = analyzeProgram(B.Graph, Opts);
  ASSERT_TRUE(R.Converged) << describe(R, B.Graph);
  EXPECT_EQ(R.matchedNodePairs(), dynamicPairs(B.Graph, 8));
}

TEST(EngineTest, StatsAreRecorded) {
  StatsRegistry Local;
  Built B = buildFrom(corpus::exchangeWithRoot());
  AnalysisResult R =
      analyzeProgram(B.Graph, AnalysisOptions::simpleSymbolic(), &Local);
  ASSERT_TRUE(R.Converged);
  EXPECT_GT(R.StatesExplored, 0u);
  EXPECT_GT(R.ConfigsVisited, 0u);
  EXPECT_GT(Local.counter("cg.closure.full.calls") +
                Local.counter("cg.closure.incr.calls"),
            0);
  EXPECT_GT(Local.seconds("pcfg.analysis.seconds"), 0.0);
}

} // namespace
