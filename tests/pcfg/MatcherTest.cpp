//===- tests/pcfg/MatcherTest.cpp - Send/receive matcher unit tests ------------===//

#include "pcfg/Matcher.h"

#include "lang/Parser.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace csdf;

namespace {

class MatcherTest : public ::testing::Test {
protected:
  void SetUp() override {
    Cg.addLowerBound("np", 4);
    Opts = AnalysisOptions::simpleSymbolic();
  }

  const Expr *parseExpr(const std::string &Text) {
    ParseResult R = parseProgram("zz = " + Text + ";");
    EXPECT_TRUE(R.succeeded()) << Text;
    Programs.push_back(std::move(R.Prog));
    return cast<AssignStmt>(Programs.back().body()[0])->value();
  }

  CommDesc idShift(std::int64_t Offset, ProcRange Range) {
    CommDesc D;
    D.Range = std::move(Range);
    D.Partner.TheKind = PartnerExpr::Kind::IdPlusC;
    D.Partner.Offset = Offset;
    D.Tag = LinearExpr(0);
    return D;
  }

  CommDesc uniform(LinearExpr Value, ProcRange Range) {
    CommDesc D;
    D.Range = std::move(Range);
    D.Partner.TheKind = PartnerExpr::Kind::Uniform;
    D.Partner.Value = std::move(Value);
    D.Tag = LinearExpr(0);
    return D;
  }

  std::vector<Program> Programs;
  ConstraintGraph Cg;
  FactEnv Facts;
  AnalysisOptions Opts;
  bool TagConflict = false;
};

TEST_F(MatcherTest, ShiftPairFullMatch) {
  // Senders [0..np-2] -> id+1; receivers [1..np-1] <- id-1.
  CommDesc Send = idShift(1, ProcRange(LinearExpr(0), LinearExpr("np", -2)));
  CommDesc Recv = idShift(-1, ProcRange(LinearExpr(1), LinearExpr("np", -1)));
  auto M = tryMatch(Opts, Send, Recv, Cg, Facts, TagConflict);
  ASSERT_TRUE(M.has_value());
  EXPECT_TRUE(M->SenderFull);
  EXPECT_TRUE(M->ReceiverFull);
}

TEST_F(MatcherTest, ShiftPairWrongOffsetsNoMatch) {
  CommDesc Send = idShift(1, ProcRange(LinearExpr(0), LinearExpr("np", -2)));
  CommDesc Recv = idShift(-2, ProcRange(LinearExpr(2), LinearExpr("np", -1)));
  EXPECT_FALSE(tryMatch(Opts, Send, Recv, Cg, Facts, TagConflict));
}

TEST_F(MatcherTest, ShiftPairPartialReceivers) {
  // Senders [0..0] -> id+1; receivers [1..np-1] <- id-1: only receiver 1
  // can match; the rest stays blocked.
  CommDesc Send = idShift(1, ProcRange(LinearExpr(0), LinearExpr(0)));
  CommDesc Recv = idShift(-1, ProcRange(LinearExpr(1), LinearExpr("np", -1)));
  auto M = tryMatch(Opts, Send, Recv, Cg, Facts, TagConflict);
  ASSERT_TRUE(M.has_value());
  EXPECT_TRUE(M->SenderFull);
  EXPECT_FALSE(M->ReceiverFull);
  ASSERT_TRUE(M->ReceiverRest.After.has_value());
  EXPECT_EQ(M->ReceiverRest.After->lb().primary(), LinearExpr(2));
  EXPECT_FALSE(M->ReceiverRest.Before.has_value());
}

TEST_F(MatcherTest, UniformDestPinsSingleSender) {
  // Workers [1..np-1] all send to 0; root receives from i == 2.
  Cg.assign("p0.i", LinearExpr(2));
  CommDesc Send =
      uniform(LinearExpr(0), ProcRange(LinearExpr(1), LinearExpr("np", -1)));
  CommDesc Recv = uniform(LinearExpr("p0.i", 0),
                          ProcRange(LinearExpr(0), LinearExpr(0)));
  // Receiver side: the root's claimed source is i; the matched sender is
  // {i}, split out of the worker set.
  auto M = tryMatch(Opts, Send, Recv, Cg, Facts, TagConflict);
  ASSERT_TRUE(M.has_value());
  EXPECT_FALSE(M->SenderFull);
  EXPECT_TRUE(M->ReceiverFull);
  EXPECT_TRUE(M->SProcs.provablySingleton(Cg));
  ASSERT_TRUE(M->SenderRest.Before.has_value()); // [1..i-1]
  ASSERT_TRUE(M->SenderRest.After.has_value());  // [i+1..np-1]
}

TEST_F(MatcherTest, UniformDestWrongClaimedSourceNoMatch) {
  Cg.assign("p0.i", LinearExpr(2));
  // Sender is {3}, but receiver claims its source is i == 2.
  CommDesc Send =
      uniform(LinearExpr(0), ProcRange(LinearExpr(3), LinearExpr(3)));
  CommDesc Recv = uniform(LinearExpr("p0.i", 0),
                          ProcRange(LinearExpr(0), LinearExpr(0)));
  EXPECT_FALSE(tryMatch(Opts, Send, Recv, Cg, Facts, TagConflict));
}

TEST_F(MatcherTest, TagMismatchIsFlagged) {
  CommDesc Send = idShift(1, ProcRange(LinearExpr(0), LinearExpr(0)));
  Send.Tag = LinearExpr(1);
  CommDesc Recv = idShift(-1, ProcRange(LinearExpr(1), LinearExpr(1)));
  Recv.Tag = LinearExpr(2);
  EXPECT_FALSE(tryMatch(Opts, Send, Recv, Cg, Facts, TagConflict));
  EXPECT_TRUE(TagConflict);
}

TEST_F(MatcherTest, UnknownTagNoMatchNoConflict) {
  CommDesc Send = idShift(1, ProcRange(LinearExpr(0), LinearExpr(0)));
  Send.Tag = std::nullopt;
  CommDesc Recv = idShift(-1, ProcRange(LinearExpr(1), LinearExpr(1)));
  EXPECT_FALSE(tryMatch(Opts, Send, Recv, Cg, Facts, TagConflict));
  EXPECT_FALSE(TagConflict);
}

TEST_F(MatcherTest, HsmStrategyMatchesTranspose) {
  AnalysisOptions HsmOpts = AnalysisOptions::cartesian();
  Facts.addRewrite("np", Poly::var("nrows").times(Poly::var("nrows")));
  const Expr *E = parseExpr("(id % nrows) * nrows + id / nrows");
  CommDesc Send;
  Send.Range = ProcRange::all();
  Send.PartnerAst = E;
  Send.PartnerGlobalsOnly = true;
  Send.Tag = LinearExpr(0);
  CommDesc Recv = Send;
  auto M = tryMatch(HsmOpts, Send, Recv, Cg, Facts, TagConflict);
  ASSERT_TRUE(M.has_value());
  EXPECT_TRUE(M->SenderFull);
  EXPECT_TRUE(M->ReceiverFull);
}

TEST_F(MatcherTest, HsmStrategyRequiresGlobalsOnly) {
  AnalysisOptions HsmOpts = AnalysisOptions::cartesian();
  const Expr *E = parseExpr("(id % nrows) * nrows + id / nrows");
  CommDesc Send;
  Send.Range = ProcRange::all();
  Send.PartnerAst = E;
  Send.PartnerGlobalsOnly = false; // e.g. nrows were assigned somewhere.
  Send.Tag = LinearExpr(0);
  CommDesc Recv = Send;
  EXPECT_FALSE(tryMatch(HsmOpts, Send, Recv, Cg, Facts, TagConflict));
}

TEST_F(MatcherTest, BoundToGlobalPolyPrefersGlobals) {
  Cg.assign("p0.lo$", LinearExpr("np", -1));
  SymBound B(LinearExpr("p0.lo$", 0));
  auto P = boundToGlobalPoly(B, Cg);
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(*P, Poly::var("np").minus(Poly(1)));
}

TEST_F(MatcherTest, BoundToGlobalPolyFailsOnUnresolvedLocal) {
  SymBound B(LinearExpr("p0.mystery", 0));
  EXPECT_FALSE(boundToGlobalPoly(B, Cg).has_value());
}

} // namespace
