//===- tests/pcfg/PartnerExprTest.cpp - Expression classification tests --------===//

#include "pcfg/PartnerExpr.h"

#include "lang/Parser.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace csdf;

namespace {

class PartnerExprTest : public ::testing::Test {
protected:
  const Expr *parseExpr(const std::string &Text) {
    ParseResult R = parseProgram("zz = " + Text + ";");
    EXPECT_TRUE(R.succeeded()) << Text;
    Programs.push_back(std::move(R.Prog));
    return cast<AssignStmt>(Programs.back().body()[0])->value();
  }

  PartnerExpr classify(const std::string &Text) {
    return classifyPartnerExpr(parseExpr(Text), Set, Assigned, Cg);
  }

  std::vector<Program> Programs;
  ProcSetEntry Set = [] {
    ProcSetEntry E;
    E.Name = "p0";
    E.Range = ProcRange::all();
    return E;
  }();
  std::set<std::string> Assigned = {"i", "x", "w"};
  ConstraintGraph Cg;
};

TEST_F(PartnerExprTest, MatchIdPlusCForms) {
  EXPECT_EQ(matchIdPlusC(parseExpr("id")), 0);
  EXPECT_EQ(matchIdPlusC(parseExpr("id + 3")), 3);
  EXPECT_EQ(matchIdPlusC(parseExpr("3 + id")), 3);
  EXPECT_EQ(matchIdPlusC(parseExpr("id - 2")), -2);
  EXPECT_EQ(matchIdPlusC(parseExpr("id + 2 * 3")), 6);
  EXPECT_FALSE(matchIdPlusC(parseExpr("id * 2")).has_value());
  EXPECT_FALSE(matchIdPlusC(parseExpr("2 - id")).has_value());
  EXPECT_FALSE(matchIdPlusC(parseExpr("id + i")).has_value());
}

TEST_F(PartnerExprTest, ClassifiesIdShift) {
  PartnerExpr P = classify("id + 1");
  EXPECT_TRUE(P.isIdPlusC());
  EXPECT_EQ(P.Offset, 1);
}

TEST_F(PartnerExprTest, ClassifiesConstant) {
  PartnerExpr P = classify("0");
  ASSERT_TRUE(P.isUniform());
  EXPECT_EQ(P.Value, LinearExpr(0));
}

TEST_F(PartnerExprTest, ScopesAssignedVariables) {
  PartnerExpr P = classify("i + 1");
  ASSERT_TRUE(P.isUniform());
  EXPECT_EQ(P.Value, LinearExpr("p0.i", 1));
}

TEST_F(PartnerExprTest, GlobalsStayUnscoped) {
  PartnerExpr P = classify("np - 1");
  ASSERT_TRUE(P.isUniform());
  EXPECT_EQ(P.Value, LinearExpr("np", -1));
}

TEST_F(PartnerExprTest, NonUniformVarOnMultiSetIsComplex) {
  Set.NonUniform.insert("x");
  EXPECT_TRUE(classify("x + 1").isComplex());
}

TEST_F(PartnerExprTest, NonUniformVarOnSingletonIsUniform) {
  Set.NonUniform.insert("x");
  Set.Range = ProcRange::singleton(LinearExpr(3));
  PartnerExpr P = classify("x + 1");
  ASSERT_TRUE(P.isUniform());
  EXPECT_EQ(P.Value, LinearExpr("p0.x", 1));
}

TEST_F(PartnerExprTest, TransposeExprIsComplex) {
  EXPECT_TRUE(classify("(id % nrows) * nrows + id / nrows").isComplex());
}

TEST_F(PartnerExprTest, SymbolicShiftResolvesWhenPinned) {
  // Without a pinned value, `id + ncols` is Complex.
  EXPECT_TRUE(classify("id + ncols").isComplex());
  // Pinning ncols turns it into a plain shift.
  Cg.addEQ(LinearExpr("ncols", 0), LinearExpr(4));
  PartnerExpr P = classify("id + ncols");
  ASSERT_TRUE(P.isIdPlusC());
  EXPECT_EQ(P.Offset, 4);
  PartnerExpr M = classify("id - ncols");
  ASSERT_TRUE(M.isIdPlusC());
  EXPECT_EQ(M.Offset, -4);
}

TEST_F(PartnerExprTest, NonLinearUniformResolvesWhenPinned) {
  EXPECT_TRUE(classify("np - ncols").isComplex());
  Cg.addEQ(LinearExpr("ncols", 0), LinearExpr(4));
  Cg.addEQ(LinearExpr("np", 0), LinearExpr(12));
  PartnerExpr P = classify("np - ncols");
  ASSERT_TRUE(P.isUniform());
  EXPECT_EQ(P.Value, LinearExpr(8));
}

TEST_F(PartnerExprTest, InputIsComplex) {
  EXPECT_TRUE(classify("input()").isComplex());
}

} // namespace
