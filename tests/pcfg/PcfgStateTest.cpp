//===- tests/pcfg/PcfgStateTest.cpp - State bookkeeping tests ------------------===//

#include "pcfg/PcfgState.h"

#include <gtest/gtest.h>

using namespace csdf;

namespace {

ProcSetEntry makeSet(const std::string &Name, ProcRange Range,
                     CfgNodeId Node) {
  ProcSetEntry E;
  E.Name = Name;
  E.Range = std::move(Range);
  E.Node = Node;
  return E;
}

TEST(PcfgStateTest, ScopedVarSeparatesGlobalsFromLocals) {
  ProcSetEntry Set = makeSet("p0", ProcRange::all(), 0);
  std::set<std::string> Assigned = {"x", "i"};
  EXPECT_EQ(PcfgState::scopedVar(Set, "x", Assigned), "p0.x");
  EXPECT_EQ(PcfgState::scopedVar(Set, "np", Assigned), "np");
  EXPECT_EQ(PcfgState::scopedVar(Set, "nrows", Assigned), "nrows");
}

TEST(PcfgStateTest, RenameSetMovesVariablesAndRangeReferences) {
  PcfgState St;
  St.Sets.push_back(makeSet("s7", ProcRange(LinearExpr("s7.lo$", 0),
                                            LinearExpr("np", -1)),
                            3));
  St.Cg.assign("s7.lo$", LinearExpr(2));
  St.Cg.assign("s7.i", LinearExpr(5));
  St.renameSet(0, "p0");
  EXPECT_EQ(St.Sets[0].Name, "p0");
  EXPECT_EQ(St.Cg.constValue("p0.lo$"), 2);
  EXPECT_EQ(St.Cg.constValue("p0.i"), 5);
  EXPECT_FALSE(St.Cg.hasVar("s7.i"));
  EXPECT_EQ(St.Sets[0].Range.lb().primary(), LinearExpr("p0.lo$", 0));
}

TEST(PcfgStateTest, CanonicalizeSortsByNodeThenBound) {
  PcfgState St;
  St.Sets.push_back(makeSet("a", ProcRange(LinearExpr(5), LinearExpr(9)), 7));
  St.Sets.push_back(makeSet("b", ProcRange(LinearExpr(0), LinearExpr(4)), 3));
  St.canonicalize();
  EXPECT_EQ(St.Sets[0].Node, 3u);
  EXPECT_EQ(St.Sets[0].Name, "p0");
  EXPECT_EQ(St.Sets[1].Node, 7u);
  EXPECT_EQ(St.Sets[1].Name, "p1");
}

TEST(PcfgStateTest, CanonicalizeRenumbersPendingNamespaces) {
  PcfgState St;
  St.Sets.push_back(makeSet("p0", ProcRange::all(), 1));
  PendingSend P;
  P.SendNode = 4;
  P.Seq = 9;
  P.FreezeNs = "q9";
  P.Senders = ProcRange(LinearExpr("q9.lo", 0), LinearExpr("q9.hi", 0));
  St.Cg.assign("q9.lo", LinearExpr(1));
  St.Cg.assign("q9.hi", LinearExpr(3));
  St.InFlight.push_back(P);
  St.canonicalize();
  EXPECT_EQ(St.InFlight[0].FreezeNs, "q0");
  EXPECT_EQ(St.InFlight[0].Seq, 0u);
  EXPECT_EQ(St.Cg.constValue("q0.lo"), 1);
  EXPECT_EQ(St.InFlight[0].Senders.lb().primary(),
            LinearExpr("q0.lo", 0));
}

TEST(PcfgStateTest, ConfigKeyCoversSetsAndPendings) {
  PcfgState St;
  St.Sets.push_back(makeSet("p0", ProcRange::all(), 2));
  EXPECT_EQ(St.configKey(), "n2;|");
  PendingSend P;
  P.SendNode = 5;
  P.FreezeNs = "q0";
  St.InFlight.push_back(P);
  EXPECT_EQ(St.configKey(), "n2;|s5;");
}

TEST(PcfgStateTest, JoinRequiresSameShape) {
  PcfgState A;
  A.Sets.push_back(makeSet("p0", ProcRange::all(), 2));
  PcfgState B;
  B.Sets.push_back(makeSet("p0", ProcRange::all(), 3)); // Different node.
  EXPECT_FALSE(joinStates(A, B));
}

TEST(PcfgStateTest, JoinKeepsCommonBoundForm) {
  // Old: [1..1] with i == 1; new: [1..2] with i == 2 -> common ub form
  // i... both sides must expose the alias through their own graphs.
  PcfgState A;
  A.Sets.push_back(makeSet("p0", ProcRange(LinearExpr(1), LinearExpr(1)), 2));
  A.Cg.assign("p0.i", LinearExpr(1));
  PcfgState B;
  B.Sets.push_back(makeSet("p0", ProcRange(LinearExpr(1), LinearExpr(2)), 2));
  B.Cg.assign("p0.i", LinearExpr(2));
  ASSERT_TRUE(joinStates(A, B));
  // The joined bound keeps a stable representation and the CG covers both
  // iterations.
  EXPECT_TRUE(A.Cg.provesLE(LinearExpr(1), LinearExpr("p0.i", 0)));
  EXPECT_TRUE(A.Cg.provesLE(LinearExpr("p0.i", 0), LinearExpr(2)));
  // Whatever form was chosen, it must denote the range [1..i] semantically:
  // ub == i must be provable from the stored bound form.
  SymBound Ub = A.Sets[0].Range.ub();
  EXPECT_TRUE(Ub.provablyEQ(SymBound(LinearExpr("p0.i", 0)), A.Cg));
}

TEST(PcfgStateTest, JoinFailsWithoutCommonForm) {
  PcfgState A;
  A.Sets.push_back(makeSet("p0", ProcRange(LinearExpr(1), LinearExpr(1)), 2));
  PcfgState B;
  B.Sets.push_back(makeSet("p0", ProcRange(LinearExpr(1), LinearExpr(2)), 2));
  // No variable relates 1 and 2 in either graph.
  EXPECT_FALSE(joinStates(A, B));
}

TEST(PcfgStateTest, WidenDropsUnstableValueBounds) {
  PcfgState A;
  A.Sets.push_back(makeSet("p0", ProcRange(LinearExpr(0), LinearExpr(0)), 2));
  A.Cg.assign("p0.i", LinearExpr(2));
  PcfgState B;
  B.Sets.push_back(makeSet("p0", ProcRange(LinearExpr(0), LinearExpr(0)), 2));
  B.Cg.assign("p0.i", LinearExpr(3));
  ASSERT_TRUE(widenStates(A, B));
  EXPECT_TRUE(A.Cg.provesLE(LinearExpr(2), LinearExpr("p0.i", 0)));
  EXPECT_FALSE(A.Cg.constValue("p0.i").has_value());
}

TEST(PcfgStateTest, StatesEqualChecksRangesAndGraph) {
  PcfgState A;
  A.Sets.push_back(makeSet("p0", ProcRange::all(), 2));
  PcfgState B;
  B.Sets.push_back(makeSet("p0", ProcRange::all(), 2));
  EXPECT_TRUE(statesEqual(A, B));
  B.Cg.assign("p0.x", LinearExpr(1));
  EXPECT_FALSE(statesEqual(A, B));
}

TEST(PcfgStateTest, FactsIntersectOnJoin) {
  PcfgState A;
  A.Sets.push_back(makeSet("p0", ProcRange::all(), 2));
  A.Facts.addRewrite("np", Poly::var("nrows").times(Poly::var("nrows")));
  A.Facts.addRewrite("ncols", Poly::var("nrows"));
  PcfgState B;
  B.Sets.push_back(makeSet("p0", ProcRange::all(), 2));
  B.Facts.addRewrite("np", Poly::var("nrows").times(Poly::var("nrows")));
  ASSERT_TRUE(joinStates(A, B));
  // Only the common fact survives.
  EXPECT_EQ(A.Facts.numRewrites(), 1u);
}

} // namespace
