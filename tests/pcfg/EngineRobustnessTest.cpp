//===- tests/pcfg/EngineRobustnessTest.cpp - Engine edge cases -----------------===//

#include "pcfg/Engine.h"

#include "cfg/CfgBuilder.h"
#include "lang/Corpus.h"
#include "lang/Parser.h"
#include "support/Budget.h"

#include <gtest/gtest.h>

using namespace csdf;

namespace {

struct Built {
  Program Prog;
  Cfg Graph;
};

Built buildFrom(const std::string &Source) {
  Built B;
  B.Prog = parseProgramOrDie(Source);
  B.Graph = buildCfg(B.Prog);
  return B;
}

TEST(EngineRobustnessTest, AnalysisIsDeterministic) {
  for (const auto &[Name, Source] : corpus::allPatterns()) {
    Built B = buildFrom(Source);
    AnalysisResult R1 = analyzeProgram(B.Graph, AnalysisOptions::cartesian());
    AnalysisResult R2 = analyzeProgram(B.Graph, AnalysisOptions::cartesian());
    EXPECT_EQ(R1.Converged, R2.Converged) << Name;
    EXPECT_EQ(R1.Matches, R2.Matches) << Name;
    EXPECT_EQ(R1.StatesExplored, R2.StatesExplored) << Name;
    EXPECT_EQ(R1.PrintFacts, R2.PrintFacts) << Name;
  }
}

TEST(EngineRobustnessTest, StateBudgetYieldsTopNotHang) {
  Built B = buildFrom(corpus::exchangeWithRoot());
  AnalysisOptions Opts = AnalysisOptions::simpleSymbolic();
  Opts.MaxStates = 3;
  AnalysisResult R = analyzeProgram(B.Graph, Opts);
  EXPECT_FALSE(R.Converged);
  EXPECT_NE(R.TopReason.find("budget"), std::string::npos);
}

TEST(EngineRobustnessTest, ProcSetBoundYieldsTop) {
  Built B = buildFrom(corpus::exchangeWithRoot());
  AnalysisOptions Opts = AnalysisOptions::simpleSymbolic();
  Opts.MaxProcSets = 1;
  AnalysisResult R = analyzeProgram(B.Graph, Opts);
  EXPECT_FALSE(R.Converged);
}

TEST(EngineRobustnessTest, InFlightBoundYieldsTop) {
  // With buffering capped at 1, the transpose still works (one pending),
  // but a two-send program cannot buffer both.
  Built B = buildFrom("x = 1;\n"
                      "send x -> (id + 1) % np;\n"
                      "send x -> (id + 2) % np;\n"
                      "recv y <- (id + np - 1) % np;\n"
                      "recv z <- (id + np - 2) % np;\n");
  AnalysisOptions Opts = AnalysisOptions::cartesian();
  Opts.MaxInFlight = 1;
  AnalysisResult R = analyzeProgram(B.Graph, Opts);
  EXPECT_FALSE(R.Converged);
}

TEST(EngineRobustnessTest, MinProcsIsRespected) {
  // With MinProcs = 1, splitting [0..np-1] on id == 0 cannot prove the
  // else-part non-empty — it is kept possibly-empty and the analysis
  // still converges with the same topology.
  Built B = buildFrom(corpus::figure2Exchange());
  AnalysisOptions Opts = AnalysisOptions::simpleSymbolic();
  Opts.MinProcs = 4;
  AnalysisResult R4 = analyzeProgram(B.Graph, Opts);
  EXPECT_TRUE(R4.Converged);
}

TEST(EngineRobustnessTest, WhileLoopWithoutCommConverges) {
  Built B = buildFrom("x = 0; while x < 100 do x = x + 1; end print x;");
  AnalysisResult R = analyzeProgram(B.Graph, AnalysisOptions::simpleSymbolic());
  EXPECT_TRUE(R.Converged);
  EXPECT_TRUE(R.Matches.empty());
}

TEST(EngineRobustnessTest, NestedLoopsConverge) {
  Built B = buildFrom("s = 0;\n"
                      "for i = 0 to 3 do\n"
                      "  for j = 0 to 3 do\n"
                      "    s = s + 1;\n"
                      "  end\n"
                      "end\n"
                      "print s;");
  AnalysisResult R = analyzeProgram(B.Graph, AnalysisOptions::simpleSymbolic());
  EXPECT_TRUE(R.Converged);
}

TEST(EngineRobustnessTest, BranchOnInputForksBothWays) {
  // Nondeterministic data flow: both branch outcomes must be covered.
  Built B = buildFrom(R"mpl(
c = input();
if id == 0 then
  x = 1;
  send x -> 1;
elif id == 1 then
  recv y <- 0;
  if c > 0 then
    print y;
  else
    print 0 - y;
  end
end
)mpl");
  AnalysisResult R = analyzeProgram(B.Graph, AnalysisOptions::simpleSymbolic());
  ASSERT_TRUE(R.Converged);
  // Both prints appear in the facts.
  std::set<CfgNodeId> PrintNodes;
  for (const PrintFact &F : R.PrintFacts)
    PrintNodes.insert(F.Node);
  EXPECT_EQ(PrintNodes.size(), 2u);
  EXPECT_EQ(R.matchedNodePairs().size(), 1u);
}

TEST(EngineRobustnessTest, BranchOnNonUniformVarOfMultiSetTopsOut) {
  // x = id on a multi-process set, then branching on x: the set would
  // split data-dependently, which the framework cannot do exactly.
  Built B = buildFrom(R"mpl(
x = id * 2;
if x > 4 then
  skip;
end
)mpl");
  AnalysisResult R = analyzeProgram(B.Graph, AnalysisOptions::simpleSymbolic());
  EXPECT_FALSE(R.Converged);
}

TEST(EngineRobustnessTest, UniformDataBranchOnMultiSetIsFine) {
  Built B = buildFrom(R"mpl(
x = 7;
if x > 4 then
  print x;
end
)mpl");
  AnalysisResult R = analyzeProgram(B.Graph, AnalysisOptions::simpleSymbolic());
  ASSERT_TRUE(R.Converged);
  bool Proved = false;
  for (const PrintFact &F : R.PrintFacts)
    Proved |= F.Value == 7 && F.SetRange == "[0..np-1]";
  EXPECT_TRUE(Proved);
}

TEST(EngineRobustnessTest, ElifChainSplitsThreeWays) {
  Built B = buildFrom(R"mpl(
if id == 0 then
  print 1;
elif id == 1 then
  print 2;
else
  print 3;
end
)mpl");
  AnalysisResult R = analyzeProgram(B.Graph, AnalysisOptions::simpleSymbolic());
  ASSERT_TRUE(R.Converged);
  std::set<std::string> Ranges;
  for (const PrintFact &F : R.PrintFacts)
    Ranges.insert(F.SetRange);
  EXPECT_TRUE(Ranges.count("[0..0]"));
  EXPECT_TRUE(Ranges.count("[1..1]"));
  EXPECT_TRUE(Ranges.count("[2..np-1]"));
}

//===--------------------------------------------------------------------===//
// Structured outcomes: every budget give-up names which limit tripped and
// preserves the partial results computed so far.
//===--------------------------------------------------------------------===//

TEST(EngineRobustnessTest, StateBudgetReportsStructuredVerdict) {
  Built B = buildFrom(corpus::exchangeWithRoot());
  AnalysisOptions Opts = AnalysisOptions::simpleSymbolic();
  Opts.MaxStates = 3;
  AnalysisResult R = analyzeProgram(B.Graph, Opts);
  EXPECT_FALSE(R.Converged);
  EXPECT_EQ(R.Outcome.Verdict, AnalysisVerdict::DegradedToTop);
  EXPECT_EQ(R.Outcome.Budget, BudgetKind::States);
  EXPECT_EQ(R.Outcome.str(), "degraded-to-top(states)");
  // Partial results survive the give-up.
  EXPECT_GT(R.StatesExplored, 0u);
}

TEST(EngineRobustnessTest, VariantBudgetNamesOffendingConfiguration) {
  // A zero cap rejects the very first variant stored at any configuration
  // — a deterministic trip that must surface the structured verdict with
  // the offending configuration key attached.
  Built B = buildFrom(corpus::figure2Exchange());
  AnalysisOptions Opts = AnalysisOptions::simpleSymbolic();
  Opts.MaxVariantsPerConfig = 0;
  AnalysisResult R = analyzeProgram(B.Graph, Opts);
  EXPECT_FALSE(R.Converged);
  EXPECT_EQ(R.Outcome.Verdict, AnalysisVerdict::DegradedToTop);
  EXPECT_EQ(R.Outcome.Budget, BudgetKind::Variants);
  EXPECT_FALSE(R.Outcome.Configuration.empty());
  EXPECT_NE(R.Outcome.Reason.find("unjoinable"), std::string::npos);
  EXPECT_EQ(R.Outcome.str(), "degraded-to-top(variants)");
}

TEST(EngineRobustnessTest, InFlightBudgetReportsStructuredVerdict) {
  Built B = buildFrom("x = 1;\n"
                      "send x -> (id + 1) % np;\n"
                      "send x -> (id + 2) % np;\n"
                      "recv y <- (id + np - 1) % np;\n"
                      "recv z <- (id + np - 2) % np;\n");
  AnalysisOptions Opts = AnalysisOptions::cartesian();
  Opts.MaxInFlight = 1;
  AnalysisResult R = analyzeProgram(B.Graph, Opts);
  EXPECT_FALSE(R.Converged);
  EXPECT_EQ(R.Outcome.Verdict, AnalysisVerdict::DegradedToTop);
  EXPECT_EQ(R.Outcome.Budget, BudgetKind::InFlight);
}

TEST(EngineRobustnessTest, PrecisionGiveUpHasNoBudgetKind) {
  // ringShift tops out for precision reasons, not because of a budget.
  Built B = buildFrom(corpus::ringShift());
  AnalysisResult R =
      analyzeProgram(B.Graph, AnalysisOptions::simpleSymbolic());
  EXPECT_FALSE(R.Converged);
  EXPECT_EQ(R.Outcome.Verdict, AnalysisVerdict::DegradedToTop);
  EXPECT_EQ(R.Outcome.Budget, BudgetKind::None);
  EXPECT_EQ(R.Outcome.str(), "degraded-to-top");
}

TEST(EngineRobustnessTest, CompleteAnalysisReportsCompleteOutcome) {
  Built B = buildFrom(corpus::figure2Exchange());
  AnalysisResult R =
      analyzeProgram(B.Graph, AnalysisOptions::simpleSymbolic());
  ASSERT_TRUE(R.Converged);
  EXPECT_TRUE(R.Outcome.complete());
  EXPECT_EQ(R.Outcome.str(), "complete");
}

namespace {

/// Many sequential transpose phases: enough engine steps and prover work
/// that a cooperative budget gets polled past its sampling interval.
std::string manyPhases(int K) {
  std::string S = "assume np == nrows * nrows;\n";
  for (int I = 0; I < K; ++I) {
    std::string N = std::to_string(I);
    S += "x" + N + " = id + " + N + ";\n";
    S += "send x" + N + " -> (id % nrows) * nrows + id / nrows;\n";
    S += "recv y" + N + " <- (id % nrows) * nrows + id / nrows;\n";
  }
  return S;
}

} // namespace

TEST(EngineRobustnessTest, DeadlineKillSwitchDegradesWithPartialResults) {
  Built B = buildFrom(manyPhases(400));
  AnalysisBudget Budget;
  Budget.DeadlineMs = 1;
  AnalysisOptions Opts = AnalysisOptions::cartesian();
  Opts.Budget = &Budget;
  AnalysisResult R = analyzeProgram(B.Graph, Opts);
  EXPECT_FALSE(R.Converged);
  EXPECT_EQ(R.Outcome.Verdict, AnalysisVerdict::DegradedToTop);
  EXPECT_EQ(R.Outcome.Budget, BudgetKind::Deadline);
  EXPECT_EQ(R.Outcome.str(), "degraded-to-top(deadline)");
  // Progress made before the deadline is preserved, and the offending
  // configuration is recorded.
  EXPECT_GT(R.StatesExplored, 0u);
  EXPECT_FALSE(R.Outcome.Configuration.empty());
}

TEST(EngineRobustnessTest, ProverStepBudgetDegradesNotAborts) {
  Built B = buildFrom(corpus::transposeSquare());
  AnalysisBudget Budget;
  Budget.MaxProverSteps = 1;
  AnalysisOptions Opts = AnalysisOptions::cartesian();
  Opts.Budget = &Budget;
  AnalysisResult R = analyzeProgram(B.Graph, Opts);
  EXPECT_FALSE(R.Converged);
  EXPECT_EQ(R.Outcome.Verdict, AnalysisVerdict::DegradedToTop);
  EXPECT_EQ(R.Outcome.Budget, BudgetKind::ProverSteps);
}

TEST(EngineRobustnessTest, BudgetedRunMatchesUnbudgetedWhenNothingTrips) {
  // A generous budget must not change any analysis result.
  for (const auto &[Name, Source] : corpus::allPatterns()) {
    Built B = buildFrom(Source);
    AnalysisResult Plain =
        analyzeProgram(B.Graph, AnalysisOptions::cartesian());
    AnalysisBudget Budget;
    Budget.DeadlineMs = 60000;
    Budget.MaxMemoryMb = 1024;
    Budget.MaxProverSteps = 100000000;
    AnalysisOptions Opts = AnalysisOptions::cartesian();
    Opts.Budget = &Budget;
    AnalysisResult Budgeted = analyzeProgram(B.Graph, Opts);
    EXPECT_EQ(Plain.Converged, Budgeted.Converged) << Name;
    EXPECT_EQ(Plain.Matches, Budgeted.Matches) << Name;
    EXPECT_EQ(Plain.StatesExplored, Budgeted.StatesExplored) << Name;
    EXPECT_EQ(Plain.Outcome.str(), Budgeted.Outcome.str()) << Name;
  }
}

TEST(EngineRobustnessTest, SelfSendSelfRecvViaHsm) {
  // send x -> id; recv y <- id: every process is its own partner.
  Built B = buildFrom("x = 3; send x -> id; recv y <- id; print y;");
  AnalysisResult R = analyzeProgram(B.Graph, AnalysisOptions::cartesian());
  ASSERT_TRUE(R.Converged);
  EXPECT_EQ(R.matchedNodePairs().size(), 1u);
  bool Proved = false;
  for (const PrintFact &F : R.PrintFacts)
    Proved |= F.Value == 3;
  EXPECT_TRUE(Proved);
}

} // namespace
