//===- tests/pcfg/AggregateTest.cpp - Section X send-loop aggregation ----------===//
//
// Tests of the Section X extension: "the all-to-all exchange pattern ...
// forces the dataflow framework to process the entire loop of sends,
// aggregating individual send expressions into a single abstraction".
// A singleton sender's send loop becomes one in-flight aggregate, matched
// against whole receiver sets in a single step.
//
//===----------------------------------------------------------------------===//

#include "pcfg/Engine.h"

#include "cfg/CfgBuilder.h"
#include "interp/Interpreter.h"
#include "lang/Corpus.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace csdf;

namespace {

struct Built {
  Program Prog;
  Cfg Graph;
};

Built buildFrom(const std::string &Source) {
  Built B;
  B.Prog = parseProgramOrDie(Source);
  B.Graph = buildCfg(B.Prog);
  return B;
}

std::set<std::pair<CfgNodeId, CfgNodeId>>
dynamicPairs(const Cfg &Graph, int NumProcs) {
  RunOptions Opts;
  Opts.NumProcs = NumProcs;
  RunResult R = runProgram(Graph, Opts);
  EXPECT_TRUE(R.finished()) << R.Error;
  std::set<std::pair<CfgNodeId, CfgNodeId>> Pairs;
  for (const TraceEvent &E : R.Trace)
    Pairs.insert({E.SendNode, E.RecvNode});
  return Pairs;
}

TEST(AggregateTest, BroadcastMatchesWholeReceiverSetAtOnce) {
  Built B = buildFrom(corpus::fanOutBroadcast());
  AnalysisResult Agg = analyzeProgram(B.Graph, AnalysisOptions::sectionX());
  ASSERT_TRUE(Agg.Converged);
  EXPECT_EQ(Agg.matchedNodePairs(), dynamicPairs(B.Graph, 8));

  // The whole point: one aggregate match instead of per-iteration
  // unrolling — far fewer states than the per-iteration engine.
  AnalysisResult PerIter =
      analyzeProgram(B.Graph, AnalysisOptions::cartesian());
  ASSERT_TRUE(PerIter.Converged);
  EXPECT_LT(Agg.StatesExplored, PerIter.StatesExplored);
  // And the match covers all of [1..np-1] in one record.
  ASSERT_EQ(Agg.Matches.size(), 1u);
  EXPECT_EQ(Agg.Matches.begin()->ReceiverRange, "[1..np-1]");
}

TEST(AggregateTest, BroadcastValuePropagatesThroughAggregate) {
  Built B = buildFrom(R"mpl(
if id == 0 then
  x = 42;
  for i = 1 to np - 1 do
    send x -> i;
  end
else
  recv y <- 0;
  print y;
end
)mpl");
  AnalysisResult R = analyzeProgram(B.Graph, AnalysisOptions::sectionX());
  ASSERT_TRUE(R.Converged);
  bool Proved = false;
  for (const PrintFact &F : R.PrintFacts)
    Proved |= F.Value == 42 && F.SetRange == "[1..np-1]";
  EXPECT_TRUE(Proved) << "whole receiver set should print 42";
}

TEST(AggregateTest, ValueDependingOnLoopVarIsNotClaimedUniform) {
  // send (i * 2) -> i: every receiver gets a different value; the
  // aggregate must not pretend the value is uniform.
  Built B = buildFrom(R"mpl(
if id == 0 then
  for i = 1 to np - 1 do
    send i * 2 -> i;
  end
else
  recv y <- 0;
  print y;
end
)mpl");
  AnalysisResult R = analyzeProgram(B.Graph, AnalysisOptions::sectionX());
  ASSERT_TRUE(R.Converged);
  for (const PrintFact &F : R.PrintFacts)
    EXPECT_FALSE(F.Value.has_value())
        << "per-receiver values must stay unknown";
  EXPECT_EQ(R.matchedNodePairs(), dynamicPairs(B.Graph, 8));
}

TEST(AggregateTest, GatherLoopConsumesWholeSenderBlock) {
  // The dual summary: the root's receive loop consumes the in-flight
  // block from [1..np-1] in one step.
  Built B = buildFrom(corpus::gatherToRoot());
  AnalysisResult R = analyzeProgram(B.Graph, AnalysisOptions::sectionX());
  ASSERT_TRUE(R.Converged);
  EXPECT_EQ(R.matchedNodePairs(), dynamicPairs(B.Graph, 8));
  ASSERT_EQ(R.Matches.size(), 1u);
  EXPECT_EQ(R.Matches.begin()->SenderRange, "[1..np-1]");
  EXPECT_LE(R.StatesExplored, 4u);
}

TEST(AggregateTest, TwoPhaseKernelConvergesSymbolically) {
  // With both loop summaries, broadcast-then-gather — which the
  // per-iteration engine only handles at pinned np — converges fully
  // symbolically with the clean two-edge topology.
  Built B = buildFrom(corpus::broadcastThenGather());
  AnalysisResult R = analyzeProgram(B.Graph, AnalysisOptions::sectionX());
  ASSERT_TRUE(R.Converged);
  EXPECT_EQ(R.matchedNodePairs(), dynamicPairs(B.Graph, 8));
  EXPECT_EQ(R.Matches.size(), 2u);
  EXPECT_LE(R.StatesExplored, 8u);
  for (int Np : {4, 16})
    EXPECT_EQ(R.matchedNodePairs(), dynamicPairs(B.Graph, Np));
}

TEST(AggregateTest, RecvLoopWithWrongSourcesFallsBack) {
  // The root receives from [2..np-1] but the senders are [1..np-1]: the
  // block consume must not fire with mismatched ranges; the per-iteration
  // fallback matches what it can and the leftover sender leaks.
  Built B = buildFrom(R"mpl(
if id == 0 then
  for i = 2 to np - 1 do
    recv y <- i;
  end
else
  x = 1;
  send x -> 0;
end
)mpl");
  AnalysisResult R = analyzeProgram(B.Graph, AnalysisOptions::sectionX());
  ASSERT_TRUE(R.Converged);
  EXPECT_EQ(R.matchedNodePairs(), dynamicPairs(B.Graph, 8));
  EXPECT_TRUE(R.hasBug(AnalysisBug::Kind::MessageLeak))
      << "rank 1's message is never received";
}

TEST(AggregateTest, ExchangeWithRootLoopIsNotAggregated) {
  // The loop body contains a recv too, so the summary must not apply; the
  // engine falls back to per-iteration exploration and still converges.
  Built B = buildFrom(corpus::exchangeWithRoot());
  AnalysisResult R = analyzeProgram(B.Graph, AnalysisOptions::sectionX());
  ASSERT_TRUE(R.Converged);
  EXPECT_EQ(R.matchedNodePairs(), dynamicPairs(B.Graph, 8));
}

TEST(AggregateTest, PartialConsumptionSplitsAggregate) {
  // Only half the processes are receivers of the loop; the other half
  // receives from rank 1. The aggregate is consumed in pieces.
  Built B = buildFrom(R"mpl(
assume np == 8;
if id == 0 then
  x = 5;
  for i = 2 to np - 1 do
    send x -> i;
  end
elif id == 1 then
  skip;
else
  recv y <- 0;
end
)mpl");
  AnalysisOptions Opts = AnalysisOptions::sectionX();
  Opts.FixedNp = 8;
  AnalysisResult R = analyzeProgram(B.Graph, Opts);
  ASSERT_TRUE(R.Converged);
  EXPECT_EQ(R.matchedNodePairs(), dynamicPairs(B.Graph, 8));
}

TEST(AggregateTest, LeakedAggregateIsReported) {
  // Root sends to everyone but nobody past rank 1 receives: the leftover
  // aggregate surfaces as a message leak.
  Built B = buildFrom(R"mpl(
if id == 0 then
  x = 1;
  for i = 1 to np - 1 do
    send x -> i;
  end
elif id == 1 then
  recv y <- 0;
end
)mpl");
  AnalysisResult R = analyzeProgram(B.Graph, AnalysisOptions::sectionX());
  ASSERT_TRUE(R.Converged);
  EXPECT_TRUE(R.hasBug(AnalysisBug::Kind::MessageLeak));
}

TEST(AggregateTest, MultiProcessSenderLoopFallsBack) {
  // Every process loops sending to 0 — senders are not a singleton, so
  // the summary must not fire; the analysis still treats the program
  // soundly (here: Top or exact, never wrong).
  Built B = buildFrom(R"mpl(
if id == 0 then
  for i = 1 to np - 1 do
    recv y <- i;
  end
else
  for j = 1 to 3 do
    send j -> 0;
  end
end
)mpl");
  AnalysisResult R = analyzeProgram(B.Graph, AnalysisOptions::sectionX());
  RunOptions RunOpts;
  RunOpts.NumProcs = 4;
  RunResult Run = runProgram(B.Graph, RunOpts);
  // Soundness only: every recorded match must be dynamically real.
  std::set<std::pair<CfgNodeId, CfgNodeId>> Dynamic;
  for (const TraceEvent &E : Run.Trace)
    Dynamic.insert({E.SendNode, E.RecvNode});
  for (const auto &Pair : R.matchedNodePairs())
    EXPECT_TRUE(Dynamic.count(Pair));
}

TEST(AggregateTest, TwoRoundBroadcastRespectsFifoOrder) {
  // Two successive send loops to the same receivers: both become
  // aggregates; FIFO forces the first round to match each receiver's
  // first recv and the second round its second recv.
  Built B = buildFrom(R"mpl(
if id == 0 then
  for i = 1 to np - 1 do
    send 1 -> i;
  end
  for j = 1 to np - 1 do
    send 2 -> j;
  end
else
  recv first <- 0;
  recv second <- 0;
  print first;
  print second;
end
)mpl");
  AnalysisResult R = analyzeProgram(B.Graph, AnalysisOptions::sectionX());
  ASSERT_TRUE(R.Converged);
  EXPECT_EQ(R.matchedNodePairs(), dynamicPairs(B.Graph, 8));
  // Constant propagation must bind round 1 to `first` and round 2 to
  // `second` — a FIFO violation would swap them.
  bool First1 = false;
  bool Second2 = false;
  for (const PrintFact &F : R.PrintFacts) {
    First1 |= F.Value == 1;
    Second2 |= F.Value == 2;
    EXPECT_TRUE(F.Value == 1 || F.Value == 2) << F.SetRange;
  }
  EXPECT_TRUE(First1);
  EXPECT_TRUE(Second2);
  RunOptions Opts;
  Opts.NumProcs = 4;
  RunResult Run = runProgram(B.Graph, Opts);
  ASSERT_TRUE(Run.finished());
  for (int Rank = 1; Rank < 4; ++Rank)
    EXPECT_EQ(Run.Prints[Rank], (std::vector<std::int64_t>{1, 2}));
}

TEST(AggregateTest, SweepAgainstInterpreter) {
  // Aggregated analyses agree with ground truth across kernels and np.
  for (const char *Name :
       {"fan-out-broadcast", "gather-to-root", "figure2-exchange"}) {
    std::string Source;
    for (const auto &P : corpus::allPatterns())
      if (P.Name == Name)
        Source = P.Source;
    Built B = buildFrom(Source);
    AnalysisResult R = analyzeProgram(B.Graph, AnalysisOptions::sectionX());
    ASSERT_TRUE(R.Converged) << Name;
    for (int Np : {4, 8, 16})
      EXPECT_EQ(R.matchedNodePairs(), dynamicPairs(B.Graph, Np))
          << Name << " np=" << Np;
  }
}

} // namespace
