//===- tests/pcfg/ParallelDeterminismTest.cpp - Threaded drain determinism -===//
//
// The parallel drain's headline guarantee: for any program and any client
// preset, `AnalysisOptions::Threads = N` produces a bit-identical
// AnalysisResult for every N. Workers only speculate on step outcomes; the
// coordinator commits them in the sequential worklist order, so the
// exploration — state counts included — must be indistinguishable from the
// classic single-threaded drain. This sweep serializes the *entire* result
// (matches, facts, bugs, snapshots, verdict, and exploration statistics)
// and compares it across thread counts over the whole corpus, including
// the intentionally buggy programs and a Top-driving one.
//
// Runs without budgets on purpose: under a budget, stale speculative tasks
// consume deadline/prover polls that the sequential drain would not, so
// budget-triggered degradation points may differ (see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "cfg/CfgBuilder.h"
#include "lang/Corpus.h"
#include "lang/Parser.h"
#include "pcfg/Engine.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

using namespace csdf;

namespace {

/// Serializes everything deterministic about \p R (all fields except
/// Seconds) into one comparable string.
std::string fingerprint(const AnalysisResult &R) {
  std::ostringstream Os;
  Os << "converged=" << R.Converged << "\n";
  Os << "top-reason=" << R.TopReason << "\n";
  Os << "outcome=" << R.Outcome.str() << "\n";
  Os << "outcome-reason=" << R.Outcome.Reason << "\n";
  Os << "outcome-config=" << R.Outcome.Configuration << "\n";
  for (const MatchRecord &M : R.Matches)
    Os << "match " << M.SendNode << "->" << M.RecvNode << " "
       << M.SenderRange << " " << M.ReceiverRange << "\n";
  for (const PrintFact &F : R.PrintFacts) {
    Os << "print " << F.Node << " " << F.SetRange << " ";
    if (F.Value)
      Os << *F.Value;
    else
      Os << "?";
    Os << "\n";
  }
  for (const AnalysisBug &B : R.Bugs)
    Os << "bug " << analysisBugKindName(B.TheKind) << " node=" << B.Node
       << " loc=" << B.Loc.str() << " " << B.Detail << "\n";
  for (const auto &Snapshot : R.FinalSnapshots) {
    Os << "snapshot";
    for (const auto &[Var, Val] : Snapshot) {
      Os << " " << Var << "=";
      if (Val)
        Os << *Val;
      else
        Os << "?";
    }
    Os << "\n";
  }
  Os << "states=" << R.StatesExplored << " configs=" << R.ConfigsVisited
     << " max-sets=" << R.MaxSetsSeen << "\n";
  return Os.str();
}

struct PresetCase {
  const char *Name;
  AnalysisOptions Opts;
};

std::vector<PresetCase> presets() {
  return {{"simple", AnalysisOptions::simpleSymbolic()},
          {"cartesian", AnalysisOptions::cartesian()},
          {"sectionx", AnalysisOptions::sectionX()}};
}

/// The full corpus: every well-formed pattern plus the intentionally buggy
/// programs (leak, deadlock, tag mismatch) and the Top-driving ring shift,
/// so determinism holds on failing and degraded runs too.
std::vector<corpus::NamedProgram> sweepPrograms() {
  std::vector<corpus::NamedProgram> Progs = corpus::allPatterns();
  Progs.push_back({"message-leak", corpus::messageLeak()});
  Progs.push_back({"head-to-head-deadlock", corpus::headToHeadDeadlock()});
  Progs.push_back({"tag-mismatch", corpus::tagMismatch()});
  Progs.push_back({"ring-shift", corpus::ringShift()});
  Progs.push_back({"buffer-race", corpus::bufferRace()});
  Progs.push_back({"request-leak", corpus::requestLeak()});
  Progs.push_back({"wildcard-race", corpus::wildcardRace()});
  return Progs;
}

class ParallelDeterminism
    : public ::testing::TestWithParam<corpus::NamedProgram> {};

TEST_P(ParallelDeterminism, IdenticalResultAtAnyThreadCount) {
  const corpus::NamedProgram &Prog = GetParam();
  Program P = parseProgramOrDie(Prog.Source);
  Cfg Graph = buildCfg(P);

  for (const PresetCase &Preset : presets()) {
    AnalysisOptions Base = Preset.Opts;
    Base.Threads = 1;
    std::string Sequential = fingerprint(analyzeProgram(Graph, Base));

    for (unsigned Threads : {2u, 4u, 8u}) {
      AnalysisOptions Opts = Preset.Opts;
      Opts.Threads = Threads;
      std::string Parallel = fingerprint(analyzeProgram(Graph, Opts));
      EXPECT_EQ(Sequential, Parallel)
          << Prog.Name << " preset=" << Preset.Name
          << " diverges at threads=" << Threads;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, ParallelDeterminism,
                         ::testing::ValuesIn(sweepPrograms()),
                         [](const auto &Info) {
                           std::string Name = Info.param.Name;
                           for (char &C : Name)
                             if (C == '-')
                               C = '_';
                           return Name;
                         });

// Repeated parallel runs of the same analysis must agree with each other,
// not just with the sequential baseline — catches scheduling-dependent
// flakiness that a single lucky run would hide.
TEST(ParallelDeterminismTest, RepeatedRunsAreStable) {
  Program P = parseProgramOrDie(corpus::exchangeWithRoot());
  Cfg Graph = buildCfg(P);
  AnalysisOptions Opts = AnalysisOptions::cartesian();
  Opts.Threads = 4;

  std::string First = fingerprint(analyzeProgram(Graph, Opts));
  for (int I = 0; I < 5; ++I)
    EXPECT_EQ(First, fingerprint(analyzeProgram(Graph, Opts)))
        << "run " << I;
}

} // namespace
