//===- tests/pcfg/ExactnessSweepTest.cpp - Property sweep ----------------------===//
//
// The paper's central exactness requirement, as a parameterized property:
// for every corpus kernel and every pinned process count, whenever the
// analysis converges its matched (send, recv) node pairs must equal the
// dynamic trace exactly, and even when it reports Top it must never have
// recorded a match that contradicts the trace... (matches are proven, so
// recorded pairs are sound regardless of the final verdict).
//
//===----------------------------------------------------------------------===//

#include "cfg/CfgBuilder.h"
#include "interp/Interpreter.h"
#include "lang/Corpus.h"
#include "lang/Parser.h"
#include "pcfg/Engine.h"

#include <gtest/gtest.h>

using namespace csdf;

namespace {

struct SweepCase {
  corpus::NamedProgram Prog;
  int Np;
};

std::vector<SweepCase> sweepCases() {
  std::vector<SweepCase> Cases;
  for (const auto &P : corpus::allPatterns())
    for (int Np : {4, 6, 8, 9, 12})
      Cases.push_back({P, Np});
  return Cases;
}

/// Grid parameters that satisfy each kernel's assumes at a given np, or
/// nullopt when none exist.
std::optional<std::map<std::string, std::int64_t>>
paramsFor(const std::string &Name, int Np) {
  std::map<std::string, std::int64_t> P;
  if (Name == "transpose-square") {
    for (int R = 1; R * R <= Np; ++R)
      if (R * R == Np) {
        P["nrows"] = R;
        return P;
      }
    return std::nullopt;
  }
  if (Name == "transpose-rect") {
    for (int R = 1; 2 * R * R <= Np; ++R)
      if (2 * R * R == Np) {
        P["nrows"] = R;
        P["ncols"] = 2 * R;
        return P;
      }
    return std::nullopt;
  }
  if (Name == "nascg-transpose") {
    for (int R = 1; R * R <= Np; ++R)
      if (R * R == Np) {
        P["nrows"] = R;
        P["ncols"] = R;
        return P;
      }
    for (int R = 1; 2 * R * R <= Np; ++R)
      if (2 * R * R == Np) {
        P["nrows"] = R;
        P["ncols"] = 2 * R;
        return P;
      }
    return std::nullopt;
  }
  if (Name == "vshift-2d") {
    for (int C = 2; C < Np; ++C)
      if (Np % C == 0 && Np / C >= 2) {
        P["ncols"] = C;
        P["nrows"] = Np / C;
        return P;
      }
    return std::nullopt;
  }
  if (Name == "pairwise-exchange") {
    if (Np % 2 != 0)
      return std::nullopt;
    P["half"] = Np / 2;
    return P;
  }
  return P; // No parameters needed.
}

class ExactnessSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ExactnessSweep, ConvergedMeansExact) {
  const auto &[Prog, Np] = GetParam();
  auto Params = paramsFor(Prog.Name, Np);
  if (!Params)
    GTEST_SKIP() << "no valid grid for np=" << Np;

  Program P = parseProgramOrDie(Prog.Source);
  Cfg Graph = buildCfg(P);

  RunOptions RunOpts;
  RunOpts.NumProcs = Np;
  RunOpts.Params = *Params;
  RunResult Run = runProgram(Graph, RunOpts);
  ASSERT_TRUE(Run.finished()) << Prog.Name << " np=" << Np << ": "
                              << Run.Error;
  std::set<std::pair<CfgNodeId, CfgNodeId>> Dynamic;
  for (const TraceEvent &E : Run.Trace)
    Dynamic.insert({E.SendNode, E.RecvNode});

  AnalysisOptions Opts = AnalysisOptions::cartesian();
  Opts.FixedNp = Np;
  Opts.Params = *Params;
  AnalysisResult R = analyzeProgram(Graph, Opts);

  // Soundness: every recorded match is real (matches are proven even on
  // Top runs).
  for (const auto &Pair : R.matchedNodePairs())
    EXPECT_TRUE(Dynamic.count(Pair))
        << Prog.Name << " np=" << Np << ": spurious match " << Pair.first
        << "->" << Pair.second;

  // Exactness: convergence implies the full topology was found.
  if (R.Converged) {
    EXPECT_EQ(R.matchedNodePairs(), Dynamic) << Prog.Name << " np=" << Np;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, ExactnessSweep, ::testing::ValuesIn(sweepCases()),
    [](const ::testing::TestParamInfo<SweepCase> &Info) {
      std::string Name = Info.param.Prog.Name + "_np" +
                         std::to_string(Info.param.Np);
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });

} // namespace
