//===- tests/lint/LintGoldenTest.cpp - Golden-output corpus test -----------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Runs the full `csdf lint` pipeline (library-level, default options) over
// every examples/mpl/*.mpl file and diffs the JSON diagnostics against the
// checked-in expectations in tests/lint/golden/<stem>.json. A new example
// without a golden file fails the test, which keeps the corpus covered.
//
// Regenerate after an intentional change with:
//   cd examples/mpl
//   for f in *.mpl; do
//     csdf lint $f --format json > ../../tests/lint/golden/${f%.mpl}.json
//   done
//
//===----------------------------------------------------------------------===//

#include "analysis/Lint.h"
#include "diag/DiagRenderer.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace csdf;
namespace fs = std::filesystem;

namespace {

std::string readFileOrDie(const fs::path &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot read " << Path;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

TEST(LintGolden, EveryExampleMatchesGolden) {
  const fs::path Examples = CSDF_EXAMPLES_DIR;
  const fs::path Golden = CSDF_LINT_GOLDEN_DIR;
  ASSERT_TRUE(fs::is_directory(Examples));
  ASSERT_TRUE(fs::is_directory(Golden));

  std::vector<fs::path> Files;
  for (const fs::directory_entry &E : fs::directory_iterator(Examples))
    if (E.path().extension() == ".mpl")
      Files.push_back(E.path());
  std::sort(Files.begin(), Files.end());
  ASSERT_GE(Files.size(), 10u) << "example corpus unexpectedly small";

  for (const fs::path &File : Files) {
    SCOPED_TRACE(File.filename().string());
    fs::path GoldenFile = Golden / File.stem();
    GoldenFile += ".json";
    ASSERT_TRUE(fs::exists(GoldenFile))
        << "missing golden file for " << File.filename()
        << "; every examples/mpl/*.mpl needs one (see header comment)";

    DiagnosticEngine Diags;
    lintSource(readFileOrDie(File), LintOptions(), Diags);
    std::string Actual =
        renderDiagsJson(Diags.diagnostics(), File.filename().string());
    EXPECT_EQ(readFileOrDie(GoldenFile), Actual);
  }
}

/// The acceptance-criteria check: the message leak in leak.mpl is reported
/// with its real source position (the second send, line 6 column 3).
TEST(LintGolden, LeakHasPreciseLocation) {
  const fs::path Examples = CSDF_EXAMPLES_DIR;
  DiagnosticEngine Diags;
  lintSource(readFileOrDie(Examples / "leak.mpl"), LintOptions(), Diags);
  bool Found = false;
  for (const Diagnostic &D : Diags.diagnostics())
    if (D.Pass == "message-leak") {
      Found = true;
      EXPECT_EQ(D.Loc.Line, 6u);
      EXPECT_EQ(D.Loc.Col, 3u);
    }
  EXPECT_TRUE(Found);
}

} // namespace
