//===- tests/lint/LintGoldenTest.cpp - Golden-output corpus test -----------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Runs the full `csdf lint` pipeline (library-level, default options) over
// every examples/mpl/*.mpl file and diffs the JSON diagnostics against the
// checked-in expectations in tests/lint/golden/<stem>.json. A new example
// without a golden file fails the test, which keeps the corpus covered.
//
// Regenerate after an intentional change with:
//   cd examples/mpl
//   for f in *.mpl; do
//     csdf lint $f --format json > ../../tests/lint/golden/${f%.mpl}.json
//   done
//
//===----------------------------------------------------------------------===//

#include "analysis/Lint.h"
#include "diag/DiagRenderer.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace csdf;
namespace fs = std::filesystem;

namespace {

std::string readFileOrDie(const fs::path &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot read " << Path;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

TEST(LintGolden, EveryExampleMatchesGolden) {
  const fs::path Examples = CSDF_EXAMPLES_DIR;
  const fs::path Golden = CSDF_LINT_GOLDEN_DIR;
  ASSERT_TRUE(fs::is_directory(Examples));
  ASSERT_TRUE(fs::is_directory(Golden));

  std::vector<fs::path> Files;
  for (const fs::directory_entry &E : fs::directory_iterator(Examples))
    if (E.path().extension() == ".mpl")
      Files.push_back(E.path());
  std::sort(Files.begin(), Files.end());
  ASSERT_GE(Files.size(), 10u) << "example corpus unexpectedly small";

  for (const fs::path &File : Files) {
    SCOPED_TRACE(File.filename().string());
    fs::path GoldenFile = Golden / File.stem();
    GoldenFile += ".json";
    ASSERT_TRUE(fs::exists(GoldenFile))
        << "missing golden file for " << File.filename()
        << "; every examples/mpl/*.mpl needs one (see header comment)";

    DiagnosticEngine Diags;
    lintSource(readFileOrDie(File), LintOptions(), Diags);
    std::string Actual =
        renderDiagsJson(Diags.diagnostics(), File.filename().string());
    EXPECT_EQ(readFileOrDie(GoldenFile), Actual);
  }
}

/// SARIF goldens: every tests/lint/golden/*.sarif is diffed against a fresh
/// library-level render (rule catalog included) of its example. Regenerate
/// with `csdf lint <f> --format sarif` from examples/mpl, mirroring the
/// JSON recipe above.
TEST(LintGolden, SarifGoldensMatchAndCarryRuleMetadata) {
  const fs::path Examples = CSDF_EXAMPLES_DIR;
  const fs::path Golden = CSDF_LINT_GOLDEN_DIR;

  std::vector<fs::path> Goldens;
  for (const fs::directory_entry &E : fs::directory_iterator(Golden))
    if (E.path().extension() == ".sarif")
      Goldens.push_back(E.path());
  std::sort(Goldens.begin(), Goldens.end());
  ASSERT_GE(Goldens.size(), 9u)
      << "the non-blocking corpus ships with at least nine SARIF goldens";

  for (const fs::path &GoldenFile : Goldens) {
    SCOPED_TRACE(GoldenFile.filename().string());
    fs::path Example = Examples / GoldenFile.stem();
    Example += ".mpl";
    ASSERT_TRUE(fs::exists(Example))
        << "SARIF golden without a matching example";

    DiagnosticEngine Diags;
    lintSource(readFileOrDie(Example), LintOptions(), Diags);
    std::string Actual =
        renderDiagsSarif(Diags.diagnostics(),
                         Example.filename().string(), lintRuleDocs());
    EXPECT_EQ(readFileOrDie(GoldenFile), Actual);

    // Every golden embeds the full rule catalog with documentation links.
    for (const char *Rule :
         {"csdf.buffer-race", "csdf.request-leak", "csdf.double-wait",
          "csdf.wait-uninit", "csdf.match-nondet"})
      EXPECT_NE(Actual.find(std::string("\"id\":\"") + Rule + "\""),
                std::string::npos)
          << Rule;
    EXPECT_NE(Actual.find("\"helpUri\":"), std::string::npos);
    EXPECT_NE(Actual.find("\"fullDescription\":"), std::string::npos);
  }
}

/// The acceptance-criteria check: the message leak in leak.mpl is reported
/// with its real source position (the second send, line 6 column 3).
TEST(LintGolden, LeakHasPreciseLocation) {
  const fs::path Examples = CSDF_EXAMPLES_DIR;
  DiagnosticEngine Diags;
  lintSource(readFileOrDie(Examples / "leak.mpl"), LintOptions(), Diags);
  bool Found = false;
  for (const Diagnostic &D : Diags.diagnostics())
    if (D.Pass == "message-leak") {
      Found = true;
      EXPECT_EQ(D.Loc.Line, 6u);
      EXPECT_EQ(D.Loc.Col, 3u);
    }
  EXPECT_TRUE(Found);
}

} // namespace
