//===- tests/lint/CrossCheckTest.cpp - Interpreter vs. analyzer corpus -----===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Cross-checks every examples/mpl program's *dynamic* outcome (a concrete
// interpreter run) against the *static* lint verdict. The two must agree:
//
//   * a program that runs clean (finishes, no leaked messages, no leaked
//     requests, no nondeterminism witnesses) must draw no request-lifecycle
//     finding, and — when the pCFG analysis completed without degrading to
//     Top — no communication-bug finding at all;
//   * every concrete bug the interpreter observes must be flagged by the
//     matching rule: a "buffer race" EvalError by csdf.buffer-race, a
//     "double wait" by csdf.double-wait, a wait on a never-posted request
//     by csdf.wait-uninit, leaked requests by csdf.request-leak, leaked
//     messages by csdf.message-leak, and a multi-eligible wildcard match
//     by csdf.match-nondet. Deadlocks and other EvalErrors must at least
//     surface *some* diagnostic.
//
// This is the ground-truth contract for the example corpus: adding a buggy
// example without detector coverage (or a clean twin that trips a false
// positive) fails here, not in code review.
//
//===----------------------------------------------------------------------===//

#include "analysis/Lint.h"
#include "cfg/CfgBuilder.h"
#include "interp/Interpreter.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace csdf;
namespace fs = std::filesystem;

namespace {

std::string readFileOrDie(const fs::path &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot read " << Path;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

bool hasRule(const DiagnosticEngine &Diags, const std::string &Pass) {
  for (const Diagnostic &D : Diags.diagnostics())
    if (D.Pass == Pass)
      return true;
  return false;
}

/// Run parameters per example. Most run at np = 8; the NAS-CG kernels
/// carry an `assume np == nrows * nrows` and need a matching grid.
RunOptions runConfigFor(const std::string &Stem) {
  RunOptions Opts;
  Opts.NumProcs = 8;
  Opts.Params = {{"half", 4}};
  if (Stem == "transpose" || Stem == "stress_phases") {
    Opts.NumProcs = 4;
    Opts.Params = {{"nrows", 2}};
  }
  return Opts;
}

TEST(CrossCheck, InterpreterOutcomeConsistentWithLintVerdict) {
  const fs::path Examples = CSDF_EXAMPLES_DIR;
  ASSERT_TRUE(fs::is_directory(Examples));

  std::vector<fs::path> Files;
  for (const fs::directory_entry &E : fs::directory_iterator(Examples))
    if (E.path().extension() == ".mpl")
      Files.push_back(E.path());
  std::sort(Files.begin(), Files.end());
  ASSERT_GE(Files.size(), 19u) << "example corpus unexpectedly small";

  for (const fs::path &File : Files) {
    SCOPED_TRACE(File.filename().string());
    std::string Source = readFileOrDie(File);

    // Dynamic ground truth.
    Program P = parseProgramOrDie(Source);
    Cfg Graph = buildCfg(P);
    RunResult Run = runProgram(Graph, runConfigFor(File.stem().string()));

    // Static verdict (default lint pipeline, symbolic np).
    DiagnosticEngine Diags;
    ASSERT_TRUE(lintSource(Source, LintOptions(), Diags));

    // Examples must exercise real bug classes, not setup mistakes.
    EXPECT_NE(Run.Status, RunStatus::AssertFailed)
        << "run parameters violate the program's assumes: " << Run.Error;
    if (Run.Status == RunStatus::StepLimit) {
      // The one legitimate way to hit the step budget is an intentional
      // infinite loop (unreachable.mpl); lint must have flagged the code
      // the loop cuts off.
      EXPECT_TRUE(hasRule(Diags, "unreachable-code")) << Run.Error;
      continue;
    }

    const bool DynamicClean = Run.finished() && Run.Leaks.empty() &&
                              Run.RequestLeaks.empty() &&
                              Run.NondetWitnesses.empty();

    if (DynamicClean) {
      // The request-lifecycle checks are CFG-level dataflow and must be
      // free of false positives on every clean program.
      for (const char *Pass :
           {"buffer-race", "request-leak", "double-wait", "wait-uninit"})
        EXPECT_FALSE(hasRule(Diags, Pass))
            << "false positive '" << Pass << "' on a dynamically clean run";
      // The pCFG-bridge findings are only held to that standard when the
      // analysis completed; under Top its candidates are best-effort.
      if (!hasRule(Diags, "analysis-top"))
        for (const char *Pass : {"message-leak", "possible-deadlock",
                                 "tag-mismatch", "match-nondet"})
          EXPECT_FALSE(hasRule(Diags, Pass))
              << "false positive '" << Pass
              << "' on a dynamically clean run with a complete analysis";
      continue;
    }

    // Something concrete went wrong: lint must have said *something*.
    EXPECT_FALSE(Diags.diagnostics().empty())
        << "dynamic bug with a silent lint: status="
        << runStatusName(Run.Status) << " error=" << Run.Error;

    // Evidence-directed mapping: each observed bug class implies its rule.
    if (Run.Status == RunStatus::EvalError) {
      if (Run.Error.find("buffer race") != std::string::npos)
        EXPECT_TRUE(hasRule(Diags, "buffer-race")) << Run.Error;
      if (Run.Error.find("double wait") != std::string::npos)
        EXPECT_TRUE(hasRule(Diags, "double-wait")) << Run.Error;
      if (Run.Error.find("never-posted") != std::string::npos)
        EXPECT_TRUE(hasRule(Diags, "wait-uninit")) << Run.Error;
    }
    if (Run.finished()) {
      if (!Run.RequestLeaks.empty())
        EXPECT_TRUE(hasRule(Diags, "request-leak"));
      if (!Run.Leaks.empty())
        EXPECT_TRUE(hasRule(Diags, "message-leak"));
      if (!Run.NondetWitnesses.empty())
        EXPECT_TRUE(hasRule(Diags, "match-nondet"));
    }
    if (Run.Status == RunStatus::Deadlock) {
      bool Explained = false;
      for (const char *Pass :
           {"possible-deadlock", "tag-mismatch", "tag-mismatch-const",
            "partner-bounds", "send-to-self", "analysis-top"})
        Explained = Explained || hasRule(Diags, Pass);
      EXPECT_TRUE(Explained) << "deadlock with no explaining diagnostic";
    }
  }
}

} // namespace
