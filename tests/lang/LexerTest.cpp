//===- tests/lang/LexerTest.cpp - Lexer unit tests --------------------------===//

#include "lang/Lexer.h"

#include <gtest/gtest.h>

using namespace csdf;

namespace {

std::vector<TokenKind> kindsOf(const std::string &Source) {
  Lexer Lex(Source);
  std::vector<TokenKind> Kinds;
  for (const Token &Tok : Lex.lexAll())
    Kinds.push_back(Tok.Kind);
  return Kinds;
}

TEST(LexerTest, EmptyInputIsEof) {
  EXPECT_EQ(kindsOf(""), std::vector<TokenKind>{TokenKind::Eof});
}

TEST(LexerTest, WhitespaceAndCommentsAreSkipped) {
  EXPECT_EQ(kindsOf("   # a comment\n\t  # more\n"),
            std::vector<TokenKind>{TokenKind::Eof});
}

TEST(LexerTest, LexesIntegerLiteral) {
  Lexer Lex("12345");
  Token Tok = Lex.next();
  EXPECT_EQ(Tok.Kind, TokenKind::Integer);
  EXPECT_EQ(Tok.IntValue, 12345);
}

TEST(LexerTest, RejectsOverflowingInteger) {
  Lexer Lex("99999999999999999999999999");
  EXPECT_EQ(Lex.next().Kind, TokenKind::Error);
}

TEST(LexerTest, LexesIdentifiersAndKeywords) {
  EXPECT_EQ(kindsOf("if x then end"),
            (std::vector<TokenKind>{TokenKind::KwIf, TokenKind::Identifier,
                                    TokenKind::KwThen, TokenKind::KwEnd,
                                    TokenKind::Eof}));
}

TEST(LexerTest, IdAndNpAreIdentifiers) {
  Lexer Lex("id np");
  Token A = Lex.next();
  Token B = Lex.next();
  EXPECT_EQ(A.Kind, TokenKind::Identifier);
  EXPECT_EQ(A.Text, "id");
  EXPECT_EQ(B.Kind, TokenKind::Identifier);
  EXPECT_EQ(B.Text, "np");
}

TEST(LexerTest, LexesArrows) {
  EXPECT_EQ(kindsOf("-> <- - <"),
            (std::vector<TokenKind>{TokenKind::Arrow, TokenKind::BackArrow,
                                    TokenKind::Minus, TokenKind::Less,
                                    TokenKind::Eof}));
}

TEST(LexerTest, LexesComparisonOperators) {
  EXPECT_EQ(kindsOf("== != <= >= < > ="),
            (std::vector<TokenKind>{TokenKind::EqEq, TokenKind::NotEq,
                                    TokenKind::LessEq, TokenKind::GreaterEq,
                                    TokenKind::Less, TokenKind::Greater,
                                    TokenKind::Assign, TokenKind::Eof}));
}

TEST(LexerTest, LexesArithmeticOperators) {
  EXPECT_EQ(kindsOf("+ - * / %"),
            (std::vector<TokenKind>{TokenKind::Plus, TokenKind::Minus,
                                    TokenKind::Star, TokenKind::Slash,
                                    TokenKind::Percent, TokenKind::Eof}));
}

TEST(LexerTest, TracksLineAndColumn) {
  Lexer Lex("x\n  y");
  Token X = Lex.next();
  Token Y = Lex.next();
  EXPECT_EQ(X.Loc.Line, 1u);
  EXPECT_EQ(X.Loc.Col, 1u);
  EXPECT_EQ(Y.Loc.Line, 2u);
  EXPECT_EQ(Y.Loc.Col, 3u);
}

TEST(LexerTest, BangWithoutEqualsIsError) {
  Lexer Lex("!x");
  EXPECT_EQ(Lex.next().Kind, TokenKind::Error);
}

TEST(LexerTest, UnknownCharacterIsError) {
  Lexer Lex("@");
  Token Tok = Lex.next();
  EXPECT_EQ(Tok.Kind, TokenKind::Error);
  EXPECT_NE(Tok.Text.find('@'), std::string::npos);
}

TEST(LexerTest, SendStatementTokenStream) {
  EXPECT_EQ(kindsOf("send x -> id + 1;"),
            (std::vector<TokenKind>{TokenKind::KwSend, TokenKind::Identifier,
                                    TokenKind::Arrow, TokenKind::Identifier,
                                    TokenKind::Plus, TokenKind::Integer,
                                    TokenKind::Semi, TokenKind::Eof}));
}

TEST(LexerTest, TagKeyword) {
  EXPECT_EQ(kindsOf("tag 3"),
            (std::vector<TokenKind>{TokenKind::KwTag, TokenKind::Integer,
                                    TokenKind::Eof}));
}

TEST(LexerTest, UnderscoreIdentifiers) {
  Lexer Lex("foo_bar _x");
  EXPECT_EQ(Lex.next().Text, "foo_bar");
  EXPECT_EQ(Lex.next().Text, "_x");
}

} // namespace
