//===- tests/lang/FingerprintTest.cpp - Canonical fingerprint stability ----===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The contract the incremental pipeline rests on: canonical content
// fingerprints are *stable* under everything that cannot change analysis
// results — whitespace, comments, procedure declaration order — and
// *sensitive* to everything that can: statement bodies, partner
// expressions, tags, callee names. The corpus-wide section re-checks
// stability over every examples/mpl program, so a lexer or printer change
// that accidentally makes hashes location-dependent fails here.
//
//===----------------------------------------------------------------------===//

#include "lang/Fingerprint.h"
#include "lang/Parser.h"
#include "lang/Sema.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace csdf;
namespace fs = std::filesystem;

namespace {

std::string readFileOrDie(const fs::path &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot read " << Path;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// Parse + sema (fingerprints are defined over the canonical post-sema
/// AST) and fingerprint, failing the test on front-end errors.
ProgramFingerprints fingerprintOrDie(const std::string &Source) {
  ParseResult Parsed = parseProgram(Source);
  EXPECT_TRUE(Parsed.succeeded()) << Source;
  SemaResult Sema = checkProgram(Parsed.Prog);
  EXPECT_FALSE(Sema.hasErrors()) << Source;
  return fingerprintProgram(Parsed.Prog);
}

const char *TwoProcs = R"(proc scatter do
  if id == 0 then
    x = 42;
    for i = 1 to np - 1 do
      send x -> i;
    end
  else
    recv y <- 0;
  end
end
proc report do
  if id > 0 then
    print y;
  end
end
call scatter;
call report;
)";

TEST(FingerprintTest, WhitespaceAndCommentsAreInvisible) {
  ProgramFingerprints A = fingerprintOrDie(TwoProcs);

  // Leading/trailing comments, blank lines, and trailing spaces on every
  // line: same canonical AST, different bytes and source locations.
  std::string Reformatted = "# a leading comment\n\n";
  for (const char *P = TwoProcs; *P; ++P) {
    if (*P == '\n')
      Reformatted += "  \n\n";
    else
      Reformatted += *P;
  }
  Reformatted += "\n# a trailing comment\n";
  ProgramFingerprints B = fingerprintOrDie(Reformatted);

  EXPECT_EQ(A.Main, B.Main);
  EXPECT_EQ(A.Combined, B.Combined);
  EXPECT_EQ(A.Procs, B.Procs);
  EXPECT_EQ(A.ProcsWithDeps, B.ProcsWithDeps);
}

TEST(FingerprintTest, ProcReorderKeepsCombined) {
  ProgramFingerprints A = fingerprintOrDie(TwoProcs);

  std::string Reordered = R"(proc report do
  if id > 0 then
    print y;
  end
end
proc scatter do
  if id == 0 then
    x = 42;
    for i = 1 to np - 1 do
      send x -> i;
    end
  else
    recv y <- 0;
  end
end
call scatter;
call report;
)";
  ProgramFingerprints B = fingerprintOrDie(Reordered);

  EXPECT_EQ(A.Combined, B.Combined);
  EXPECT_EQ(A.Procs, B.Procs);
}

TEST(FingerprintTest, BodyEditChangesOnlyThatProc) {
  ProgramFingerprints A = fingerprintOrDie(TwoProcs);

  std::string Edited = TwoProcs;
  size_t At = Edited.find("print y;");
  ASSERT_NE(At, std::string::npos);
  Edited.replace(At, 8, "y = y + 2;\n    print y;");
  ProgramFingerprints B = fingerprintOrDie(Edited);

  EXPECT_NE(A.Combined, B.Combined);
  EXPECT_NE(A.Procs.at("report"), B.Procs.at("report"));
  EXPECT_EQ(A.Procs.at("scatter"), B.Procs.at("scatter"));
  EXPECT_EQ(A.Main, B.Main);
}

TEST(FingerprintTest, PartnerExpressionChangeIsVisible) {
  ProgramFingerprints A = fingerprintOrDie(TwoProcs);

  std::string Edited = TwoProcs;
  size_t At = Edited.find("recv y <- 0;");
  ASSERT_NE(At, std::string::npos);
  Edited.replace(At, 12, "recv y <- id - id;");
  ProgramFingerprints B = fingerprintOrDie(Edited);

  EXPECT_NE(A.Procs.at("scatter"), B.Procs.at("scatter"));
  EXPECT_NE(A.Combined, B.Combined);
}

TEST(FingerprintTest, RenameChangesCallerAndCombined) {
  ProgramFingerprints A = fingerprintOrDie(TwoProcs);

  // Renaming a procedure changes its key, the call site that names it
  // (calls hash by callee name), and hence the main-body hash.
  std::string Renamed = TwoProcs;
  size_t At;
  while ((At = Renamed.find("report")) != std::string::npos)
    Renamed.replace(At, 6, "relay2");
  ProgramFingerprints B = fingerprintOrDie(Renamed);

  EXPECT_EQ(A.Procs.count("relay2"), 0u);
  EXPECT_EQ(B.Procs.count("report"), 0u);
  EXPECT_EQ(B.Procs.at("relay2"), A.Procs.at("report"));
  EXPECT_NE(A.Main, B.Main);
  EXPECT_NE(A.Combined, B.Combined);
}

TEST(FingerprintTest, DepClosedHashSeesCalleeEdits) {
  const char *Nested = R"(proc inner do
  x = 1;
end
proc outer do
  call inner;
  print x;
end
call outer;
)";
  ProgramFingerprints A = fingerprintOrDie(Nested);

  std::string Edited = Nested;
  size_t At = Edited.find("x = 1;");
  ASSERT_NE(At, std::string::npos);
  Edited.replace(At, 6, "x = 2;");
  ProgramFingerprints B = fingerprintOrDie(Edited);

  // outer's own body is untouched, but its dependency-closed hash must
  // see the callee's edit.
  EXPECT_EQ(A.Procs.at("outer"), B.Procs.at("outer"));
  EXPECT_NE(A.ProcsWithDeps.at("outer"), B.ProcsWithDeps.at("outer"));
  EXPECT_NE(A.ProcsWithDeps.at("inner"), B.ProcsWithDeps.at("inner"));
  EXPECT_TRUE(A.Deps.at("outer").count("inner"));
}

TEST(FingerprintTest, HexRendering) {
  EXPECT_EQ(fingerprintHex(0), "0000000000000000");
  EXPECT_EQ(fingerprintHex(0xdeadbeef12345678ull), "deadbeef12345678");
}

TEST(FingerprintTest, CorpusWideStability) {
  unsigned Checked = 0;
  for (const fs::directory_entry &Entry :
       fs::directory_iterator(CSDF_EXAMPLES_DIR)) {
    if (Entry.path().extension() != ".mpl")
      continue;
    std::string Source = readFileOrDie(Entry.path());
    ParseResult Parsed = parseProgram(Source);
    ASSERT_TRUE(Parsed.succeeded()) << Entry.path();
    ProgramFingerprints A = fingerprintProgram(Parsed.Prog);

    // Reformat: comments, blank lines, trailing spaces.
    std::string Reformatted = "# corpus stability check\n";
    for (char C : Source) {
      if (C == '\n')
        Reformatted += " \n\n";
      else
        Reformatted += C;
    }
    ParseResult Reparsed = parseProgram(Reformatted);
    ASSERT_TRUE(Reparsed.succeeded()) << Entry.path();
    ProgramFingerprints B = fingerprintProgram(Reparsed.Prog);

    EXPECT_EQ(A.Main, B.Main) << Entry.path();
    EXPECT_EQ(A.Combined, B.Combined) << Entry.path();
    EXPECT_EQ(A.Procs, B.Procs) << Entry.path();
    EXPECT_EQ(A.ProcsWithDeps, B.ProcsWithDeps) << Entry.path();
    ++Checked;
  }
  EXPECT_GE(Checked, 10u) << "example corpus went missing?";
}

} // namespace
