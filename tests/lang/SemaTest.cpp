//===- tests/lang/SemaTest.cpp - Semantic checker tests ----------------------===//

#include "lang/Sema.h"

#include "lang/Corpus.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace csdf;

namespace {

SemaResult checkSource(const std::string &Source) {
  ParseResult R = parseProgram(Source);
  EXPECT_TRUE(R.succeeded());
  return checkProgram(R.Prog);
}

TEST(SemaTest, CleanProgramHasNoErrors) {
  SemaResult R = checkSource("x = 1; send x -> 0;");
  EXPECT_FALSE(R.hasErrors());
}

TEST(SemaTest, AssigningIdIsAnError) {
  EXPECT_TRUE(checkSource("id = 3;").hasErrors());
}

TEST(SemaTest, AssigningNpIsAnError) {
  EXPECT_TRUE(checkSource("np = 3;").hasErrors());
}

TEST(SemaTest, ReceivingIntoIdIsAnError) {
  EXPECT_TRUE(checkSource("recv id <- 0;").hasErrors());
}

TEST(SemaTest, ForLoopOverNpIsAnError) {
  EXPECT_TRUE(checkSource("for np = 1 to 3 do skip; end").hasErrors());
}

TEST(SemaTest, InputInSendDestIsAnError) {
  EXPECT_TRUE(checkSource("x = 1; send x -> input();").hasErrors());
}

TEST(SemaTest, InputInRecvSrcIsAnError) {
  EXPECT_TRUE(checkSource("recv y <- input() + 1;").hasErrors());
}

TEST(SemaTest, InputInTagIsAnError) {
  EXPECT_TRUE(checkSource("x = 1; send x -> 0 tag input();").hasErrors());
}

TEST(SemaTest, InputInSentValueIsAllowed) {
  EXPECT_FALSE(checkSource("send input() -> 0;").hasErrors());
}

TEST(SemaTest, UndefinedVariableIsAWarningNotError) {
  SemaResult R = checkSource("print zzz;");
  EXPECT_FALSE(R.hasErrors());
  ASSERT_EQ(R.Diagnostics.size(), 1u);
  EXPECT_FALSE(R.Diagnostics[0].isError());
}

TEST(SemaTest, RecvDefinesItsVariable) {
  SemaResult R = checkSource("recv y <- 0; print y;");
  EXPECT_TRUE(R.Diagnostics.empty());
}

TEST(SemaTest, ForVarIsDefined) {
  SemaResult R = checkSource("for i = 0 to 3 do print i; end");
  EXPECT_TRUE(R.Diagnostics.empty());
}

TEST(SemaTest, IdAndNpNeedNoDefinition) {
  SemaResult R = checkSource("print id + np;");
  EXPECT_TRUE(R.Diagnostics.empty());
}

TEST(SemaTest, CorpusProgramsAreClean) {
  for (const auto &[Name, Source] : corpus::allPatterns()) {
    ParseResult R = parseProgram(Source);
    ASSERT_TRUE(R.succeeded()) << Name;
    SemaResult Sema = checkProgram(R.Prog);
    EXPECT_FALSE(Sema.hasErrors()) << Name;
    // Corpus programs reference only defined variables or grid parameters
    // (nrows/ncols/half), which appear in assumes and count as uses; grid
    // parameters are intentionally unbound (they are run parameters), so
    // warnings are allowed but nothing else.
    for (const SemaDiagnostic &Diag : Sema.Diagnostics)
      EXPECT_FALSE(Diag.isError()) << Name << ": " << Diag.str();
  }
}

TEST(SemaTest, ProgrammaticallyDeepAstHitsNestingLimit) {
  // The parser caps its own recursion, but sema also checks ASTs built in
  // memory (tests, generated programs); a pathologically deep one must
  // produce an error, not a stack overflow.
  Program P;
  StmtList Inner;
  for (int I = 0; I < 5000; ++I) {
    const Expr *Cond = P.makeExpr<IntLitExpr>(1, SourceLoc{1, 1});
    const Stmt *If = P.makeStmt<IfStmt>(Cond, std::move(Inner), StmtList{},
                                        SourceLoc{1, 1});
    Inner = StmtList{If};
  }
  P.setBody(std::move(Inner));
  SemaResult R = checkProgram(P);
  ASSERT_TRUE(R.hasErrors());
  bool Reported = false;
  for (const SemaDiagnostic &D : R.Diagnostics)
    Reported |= D.Message.find("nesting exceeds the limit") !=
                std::string::npos;
  EXPECT_TRUE(Reported);
}

} // namespace
