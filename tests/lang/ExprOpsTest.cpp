//===- tests/lang/ExprOpsTest.cpp - Expression utility tests -----------------===//

#include "lang/ExprOps.h"

#include "lang/Parser.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace csdf;

namespace {

/// Parses `x = <expr>;` and returns the expression (program kept alive via
/// a static-per-call holder owned by the fixture).
class ExprOpsTest : public ::testing::Test {
protected:
  const Expr *parseExpr(const std::string &Text) {
    ParseResult R = parseProgram("x = " + Text + ";");
    EXPECT_TRUE(R.succeeded()) << Text;
    Programs.push_back(std::move(R.Prog));
    return cast<AssignStmt>(Programs.back().body()[0])->value();
  }

  std::vector<Program> Programs;
};

TEST_F(ExprOpsTest, ToStringSimple) {
  EXPECT_EQ(exprToString(parseExpr("id + 1")), "id + 1");
  EXPECT_EQ(exprToString(parseExpr("(id % nrows) * nrows + id / nrows")),
            "id % nrows * nrows + id / nrows");
}

TEST_F(ExprOpsTest, ToStringPreservesNeededParens) {
  const Expr *E = parseExpr("2 * (id + 1)");
  EXPECT_EQ(exprToString(E), "2 * (id + 1)");
  // Reparse must yield the same structure.
  EXPECT_TRUE(exprEquals(E, parseExpr(exprToString(E))));
}

TEST_F(ExprOpsTest, RoundTripRandomizedShapes) {
  const char *Samples[] = {
      "id / (2 * nrows) + id % 2",
      "2 * nrows * (id / 2 % nrows) + 2 * (id / (2 * nrows)) + id % 2",
      "-(x + 1) * 3",
      "not (a and b) or c",
      "(a - b) - c",
      "a - (b - c)",
  };
  for (const char *S : Samples) {
    const Expr *E = parseExpr(S);
    EXPECT_TRUE(exprEquals(E, parseExpr(exprToString(E)))) << S;
  }
}

TEST_F(ExprOpsTest, StructuralEquality) {
  EXPECT_TRUE(exprEquals(parseExpr("id + 1"), parseExpr("id + 1")));
  EXPECT_FALSE(exprEquals(parseExpr("id + 1"), parseExpr("id + 2")));
  EXPECT_FALSE(exprEquals(parseExpr("id + 1"), parseExpr("1 + id")));
}

TEST_F(ExprOpsTest, InputNeverEqualsItself) {
  const Expr *E = parseExpr("input()");
  EXPECT_FALSE(exprEquals(E, E));
}

TEST_F(ExprOpsTest, CollectVars) {
  std::set<std::string> Vars;
  collectVars(parseExpr("a + b * id - 3"), Vars);
  EXPECT_EQ(Vars, (std::set<std::string>{"a", "b", "id"}));
}

TEST_F(ExprOpsTest, DependsOnId) {
  EXPECT_TRUE(dependsOnId(parseExpr("id + 1")));
  EXPECT_TRUE(dependsOnId(parseExpr("(x + id) * 2")));
  EXPECT_FALSE(dependsOnId(parseExpr("np - 1")));
}

TEST_F(ExprOpsTest, ContainsInput) {
  EXPECT_TRUE(containsInput(parseExpr("1 + input()")));
  EXPECT_FALSE(containsInput(parseExpr("1 + x")));
}

TEST_F(ExprOpsTest, EvalArithmetic) {
  auto Env = [](const std::string &Name) -> std::optional<std::int64_t> {
    if (Name == "id")
      return 7;
    if (Name == "np")
      return 16;
    return std::nullopt;
  };
  EXPECT_EQ(evalExpr(parseExpr("id * 2 + np"), Env), 30);
  EXPECT_EQ(evalExpr(parseExpr("id / 2"), Env), 3);
  EXPECT_EQ(evalExpr(parseExpr("id % 4"), Env), 3);
  EXPECT_EQ(evalExpr(parseExpr("id < np"), Env), 1);
  EXPECT_EQ(evalExpr(parseExpr("id == 7 and np == 16"), Env), 1);
  EXPECT_EQ(evalExpr(parseExpr("not (id == 7)"), Env), 0);
}

TEST_F(ExprOpsTest, EvalUnboundVariableFails) {
  auto Env = [](const std::string &) -> std::optional<std::int64_t> {
    return std::nullopt;
  };
  EXPECT_FALSE(evalExpr(parseExpr("x + 1"), Env).has_value());
}

TEST_F(ExprOpsTest, EvalDivisionByZeroFails) {
  auto Env = [](const std::string &) -> std::optional<std::int64_t> {
    return 0;
  };
  EXPECT_FALSE(evalExpr(parseExpr("1 / x"), Env).has_value());
  EXPECT_FALSE(evalExpr(parseExpr("1 % x"), Env).has_value());
}

TEST_F(ExprOpsTest, ShortCircuitSkipsDivByZero) {
  auto Env = [](const std::string &Name) -> std::optional<std::int64_t> {
    if (Name == "x")
      return 0;
    return std::nullopt;
  };
  EXPECT_EQ(evalExpr(parseExpr("x != 0 and 1 / x > 0"), Env), 0);
  EXPECT_EQ(evalExpr(parseExpr("x == 0 or 1 / x > 0"), Env), 1);
}

TEST_F(ExprOpsTest, FoldConstant) {
  EXPECT_EQ(foldConstant(parseExpr("2 + 3 * 4")), 14);
  EXPECT_FALSE(foldConstant(parseExpr("x + 1")).has_value());
  EXPECT_EQ(foldConstant(parseExpr("-(5)")), -5);
}

TEST_F(ExprOpsTest, TransposePartnerEvaluation) {
  // The square-transpose expression is an involution on a 4x4 grid.
  const Expr *E = parseExpr("(id % nrows) * nrows + id / nrows");
  for (std::int64_t Id = 0; Id < 16; ++Id) {
    auto Env = [Id](const std::string &Name) -> std::optional<std::int64_t> {
      if (Name == "id")
        return Id;
      if (Name == "nrows")
        return 4;
      return std::nullopt;
    };
    auto Partner = evalExpr(E, Env);
    ASSERT_TRUE(Partner.has_value());
    auto Env2 = [&](const std::string &Name) -> std::optional<std::int64_t> {
      if (Name == "id")
        return *Partner;
      if (Name == "nrows")
        return 4;
      return std::nullopt;
    };
    EXPECT_EQ(evalExpr(E, Env2), Id);
  }
}

TEST_F(ExprOpsTest, RectTransposePartnerEvaluation) {
  // The rectangular transpose expression is an involution and a bijection
  // on an nrows x 2*nrows grid for several sizes.
  const Expr *E = parseExpr(
      "2 * nrows * (id / 2 % nrows) + 2 * (id / (2 * nrows)) + id % 2");
  for (std::int64_t NRows : {1, 2, 3, 4}) {
    std::int64_t NP = 2 * NRows * NRows;
    std::set<std::int64_t> Image;
    for (std::int64_t Id = 0; Id < NP; ++Id) {
      auto Env = [&](const std::string &Name) -> std::optional<std::int64_t> {
        if (Name == "id")
          return Id;
        if (Name == "nrows")
          return NRows;
        return std::nullopt;
      };
      auto Partner = evalExpr(E, Env);
      ASSERT_TRUE(Partner.has_value());
      ASSERT_GE(*Partner, 0);
      ASSERT_LT(*Partner, NP);
      Image.insert(*Partner);
      auto Env2 = [&](const std::string &Name) -> std::optional<std::int64_t> {
        if (Name == "id")
          return *Partner;
        if (Name == "nrows")
          return NRows;
        return std::nullopt;
      };
      EXPECT_EQ(evalExpr(E, Env2), Id);
    }
    EXPECT_EQ(Image.size(), static_cast<size_t>(NP));
  }
}

} // namespace
