//===- tests/lang/ParserTest.cpp - Parser unit tests -------------------------===//

#include "lang/Parser.h"

#include "lang/AstPrinter.h"
#include "lang/Corpus.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace csdf;

namespace {

TEST(ParserTest, EmptyProgram) {
  ParseResult R = parseProgram("");
  ASSERT_TRUE(R.succeeded());
  EXPECT_TRUE(R.Prog.body().empty());
}

TEST(ParserTest, ParsesAssignment) {
  ParseResult R = parseProgram("x = 1 + 2 * 3;");
  ASSERT_TRUE(R.succeeded());
  ASSERT_EQ(R.Prog.body().size(), 1u);
  const auto *A = dyn_cast<AssignStmt>(R.Prog.body()[0]);
  ASSERT_NE(A, nullptr);
  EXPECT_EQ(A->var(), "x");
  // Precedence: 1 + (2 * 3).
  const auto *Add = dyn_cast<BinaryExpr>(A->value());
  ASSERT_NE(Add, nullptr);
  EXPECT_EQ(Add->op(), BinaryOp::Add);
  const auto *Mul = dyn_cast<BinaryExpr>(Add->rhs());
  ASSERT_NE(Mul, nullptr);
  EXPECT_EQ(Mul->op(), BinaryOp::Mul);
}

TEST(ParserTest, LeftAssociativeSubtraction) {
  ParseResult R = parseProgram("x = 10 - 3 - 2;");
  ASSERT_TRUE(R.succeeded());
  const auto *A = cast<AssignStmt>(R.Prog.body()[0]);
  const auto *Outer = cast<BinaryExpr>(A->value());
  EXPECT_EQ(Outer->op(), BinaryOp::Sub);
  const auto *Inner = dyn_cast<BinaryExpr>(Outer->lhs());
  ASSERT_NE(Inner, nullptr);
  EXPECT_EQ(Inner->op(), BinaryOp::Sub);
}

TEST(ParserTest, DivModSamePrecedenceLeftAssoc) {
  // id / 2 % nrows must parse as (id / 2) % nrows — the NAS-CG kernels
  // rely on this.
  ParseResult R = parseProgram("x = id / 2 % nrows;");
  ASSERT_TRUE(R.succeeded());
  const auto *A = cast<AssignStmt>(R.Prog.body()[0]);
  const auto *Mod = cast<BinaryExpr>(A->value());
  EXPECT_EQ(Mod->op(), BinaryOp::Mod);
  const auto *Div = dyn_cast<BinaryExpr>(Mod->lhs());
  ASSERT_NE(Div, nullptr);
  EXPECT_EQ(Div->op(), BinaryOp::Div);
}

TEST(ParserTest, ParsesSendWithTag) {
  ParseResult R = parseProgram("send x -> id + 1 tag 3;");
  ASSERT_TRUE(R.succeeded());
  const auto *S = dyn_cast<SendStmt>(R.Prog.body()[0]);
  ASSERT_NE(S, nullptr);
  ASSERT_NE(S->tag(), nullptr);
  EXPECT_EQ(cast<IntLitExpr>(S->tag())->value(), 3);
}

TEST(ParserTest, ParsesRecvWithoutTag) {
  ParseResult R = parseProgram("recv y <- 0;");
  ASSERT_TRUE(R.succeeded());
  const auto *S = dyn_cast<RecvStmt>(R.Prog.body()[0]);
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->var(), "y");
  EXPECT_EQ(S->tag(), nullptr);
}

TEST(ParserTest, ElifDesugarsToNestedIf) {
  ParseResult R = parseProgram(
      "if id == 0 then skip; elif id == 1 then skip; else skip; end");
  ASSERT_TRUE(R.succeeded());
  const auto *Outer = dyn_cast<IfStmt>(R.Prog.body()[0]);
  ASSERT_NE(Outer, nullptr);
  ASSERT_EQ(Outer->elseBody().size(), 1u);
  const auto *Inner = dyn_cast<IfStmt>(Outer->elseBody()[0]);
  ASSERT_NE(Inner, nullptr);
  EXPECT_EQ(Inner->elseBody().size(), 1u);
}

TEST(ParserTest, ParsesForLoop) {
  ParseResult R = parseProgram("for i = 1 to np - 1 do skip; end");
  ASSERT_TRUE(R.succeeded());
  const auto *F = dyn_cast<ForStmt>(R.Prog.body()[0]);
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->var(), "i");
  EXPECT_EQ(F->body().size(), 1u);
}

TEST(ParserTest, ParsesWhileLoop) {
  ParseResult R = parseProgram("while x < 10 do x = x + 1; end");
  ASSERT_TRUE(R.succeeded());
  const auto *W = dyn_cast<WhileStmt>(R.Prog.body()[0]);
  ASSERT_NE(W, nullptr);
  EXPECT_EQ(W->body().size(), 1u);
}

TEST(ParserTest, BooleanPrecedence) {
  // not binds tighter than and; and tighter than or.
  ParseResult R = parseProgram("x = not a and b or c;");
  ASSERT_TRUE(R.succeeded());
  const auto *Or = cast<BinaryExpr>(cast<AssignStmt>(R.Prog.body()[0])->value());
  EXPECT_EQ(Or->op(), BinaryOp::Or);
  const auto *And = dyn_cast<BinaryExpr>(Or->lhs());
  ASSERT_NE(And, nullptr);
  EXPECT_EQ(And->op(), BinaryOp::And);
  EXPECT_NE(dyn_cast<UnaryExpr>(And->lhs()), nullptr);
}

TEST(ParserTest, TrueFalseAreLiterals) {
  ParseResult R = parseProgram("x = true; y = false;");
  ASSERT_TRUE(R.succeeded());
  EXPECT_EQ(cast<IntLitExpr>(cast<AssignStmt>(R.Prog.body()[0])->value())
                ->value(),
            1);
  EXPECT_EQ(cast<IntLitExpr>(cast<AssignStmt>(R.Prog.body()[1])->value())
                ->value(),
            0);
}

TEST(ParserTest, InputExpression) {
  ParseResult R = parseProgram("x = input();");
  ASSERT_TRUE(R.succeeded());
  EXPECT_NE(dyn_cast<InputExpr>(cast<AssignStmt>(R.Prog.body()[0])->value()),
            nullptr);
}

TEST(ParserTest, MissingSemicolonIsDiagnosed) {
  ParseResult R = parseProgram("x = 1");
  EXPECT_FALSE(R.succeeded());
}

TEST(ParserTest, MissingEndIsDiagnosed) {
  ParseResult R = parseProgram("if x then skip;");
  EXPECT_FALSE(R.succeeded());
}

TEST(ParserTest, RecoversAndReportsMultipleErrors) {
  ParseResult R = parseProgram("x = ;\ny = ;\n");
  EXPECT_FALSE(R.succeeded());
  EXPECT_GE(R.Diagnostics.size(), 2u);
}

TEST(ParserTest, DiagnosticCarriesLocation) {
  ParseResult R = parseProgram("\n\nx = ;");
  ASSERT_FALSE(R.succeeded());
  EXPECT_EQ(R.Diagnostics[0].Loc.Line, 3u);
}

TEST(ParserTest, AllCorpusProgramsParse) {
  for (const auto &[Name, Source] : corpus::allPatterns()) {
    ParseResult R = parseProgram(Source);
    EXPECT_TRUE(R.succeeded()) << Name;
  }
  EXPECT_TRUE(parseProgram(corpus::messageLeak()).succeeded());
  EXPECT_TRUE(parseProgram(corpus::headToHeadDeadlock()).succeeded());
  EXPECT_TRUE(parseProgram(corpus::tagMismatch()).succeeded());
  EXPECT_TRUE(parseProgram(corpus::ringShift()).succeeded());
}

TEST(ParserTest, DeepNestingReportsDepthLimitNotCrash) {
  // 10x the configured limit of nested ifs: one clean diagnostic, no
  // stack overflow, no diagnostic flood.
  std::string Source;
  for (unsigned I = 0; I < DefaultMaxParseDepth * 10; ++I)
    Source += "if id == 0 then\n";
  ParseResult R = parseProgram(Source);
  ASSERT_FALSE(R.succeeded());
  bool Reported = false;
  for (const ParseDiagnostic &D : R.Diagnostics)
    Reported |= D.Message.find("nesting depth exceeds the limit") !=
                std::string::npos;
  EXPECT_TRUE(Reported);
}

TEST(ParserTest, DeepExpressionsHitDepthLimitToo) {
  std::string Source = "x = ";
  for (unsigned I = 0; I < DefaultMaxParseDepth * 10; ++I)
    Source += "not ";
  Source += "1;";
  ParseResult R = parseProgram(Source);
  ASSERT_FALSE(R.succeeded());
}

TEST(ParserTest, NestingWithinLimitIsAccepted) {
  std::string Source;
  for (unsigned I = 0; I < 50; ++I)
    Source += "if id == 0 then\n";
  Source += "skip;\n";
  for (unsigned I = 0; I < 50; ++I)
    Source += "end\n";
  EXPECT_TRUE(parseProgram(Source).succeeded());
}

TEST(ParserTest, LexErrorAfterPartialStmtTerminates) {
  // Regression: the token stream ends at the first Error token, and error
  // recovery used to spin forever trying to skip past it.
  ParseResult R = parseProgram("d.");
  EXPECT_FALSE(R.succeeded());
  EXPECT_FALSE(R.Diagnostics.empty());
}

TEST(ParserTest, PrintRoundTripsStructurally) {
  for (const auto &[Name, Source] : corpus::allPatterns()) {
    ParseResult First = parseProgram(Source);
    ASSERT_TRUE(First.succeeded()) << Name;
    std::string Printed = programToString(First.Prog);
    ParseResult Second = parseProgram(Printed);
    ASSERT_TRUE(Second.succeeded()) << Name << "\n" << Printed;
    EXPECT_EQ(Printed, programToString(Second.Prog)) << Name;
  }
}

} // namespace
