#!/usr/bin/env python3
"""Crash-recovery smoke for the durable serve store (real binary).

Phases:
  1. Populate a store over the socket, shut down cleanly (exit 0 pinned).
  2. Crash the daemon mid-store-write with CSDF_FAULT=serve-crash-write
     (SIGKILL-equivalent: _exit between temp write and rename).
  3. Corrupt one surviving record and truncate another on disk.
  4. Restart cold and replay the whole population: >=90% must be served
     from the disk tier byte-identically; the damaged records must be
     quarantined and re-analyzed, never served.

Usage: serve_durability.py <csdf-binary>
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from csdf_serve_util import (
    fail,
    get_stats,
    log,
    program,
    normalize_wall,
    raw_result,
    request_json,
    shutdown_daemon,
    start_daemon,
)

N = 30  # population size; 2 damaged records still leaves 28/30 > 90%


def main():
    csdf = sys.argv[1]
    work = tempfile.mkdtemp(prefix="csdf-durability-")
    store = os.path.join(work, "store")
    sock = os.path.join(work, "serve.sock")
    try:
        run(csdf, store, sock)
    finally:
        shutil.rmtree(work, ignore_errors=True)
    log("PASS: serve durability")


def populate(sock):
    results = {}
    for i in range(N):
        raw, resp = request_json(
            sock,
            {"id": i, "type": "analyze", "path": "p%d.mpl" % i,
             "source": program(i)},
        )
        if resp is None or not resp.get("ok"):
            fail("populate request %d failed: %r" % (i, raw))
        results[i] = normalize_wall(raw_result(raw))
    return results

def run(csdf, store, sock):
    # --- Phase 1: populate, clean shutdown. --------------------------------
    proc = start_daemon(csdf, sock, ["--store-dir", store])
    golden = populate(sock)
    stats = get_stats(sock)
    if stats["disk_writes"] != N:
        fail("expected %d disk writes, got %s" % (N, stats["disk_writes"]))
    shutdown_daemon(proc, sock, expect_rc=0)
    log("phase 1: populated %d entries, clean shutdown rc=0" % N)

    # --- Phase 2: crash mid-write. -----------------------------------------
    # The fault site fires on the first store write after restart: the
    # daemon dies between writing the temp file and renaming it, exactly
    # the torn state a power cut leaves behind.
    proc = start_daemon(
        csdf, sock, ["--store-dir", store],
        env_extra={"CSDF_FAULT": "serve-crash-write:1"},
    )
    raw, resp = request_json(
        sock,
        {"type": "analyze", "path": "crash.mpl", "source": program(1000)},
    )
    rc = proc.wait(timeout=10)
    if rc != 137:
        fail("crash-write daemon exit code %d, want 137" % rc)
    temps = [f for f in os.listdir(store) if ".tmp." in f]
    if not temps:
        fail("crash left no temp file behind; fault site did not fire")
    log("phase 2: daemon crashed mid-write, %d orphan temp(s)" % len(temps))

    # --- Phase 3: damage two surviving records. ----------------------------
    recs = sorted(
        f for f in os.listdir(store) if f.endswith(".rec")
    )
    if len(recs) != N:
        fail("expected %d records on disk, found %d" % (N, len(recs)))
    corrupt = os.path.join(store, recs[3])
    with open(corrupt, "r+b") as f:
        data = bytearray(f.read())
        data[len(data) // 2] ^= 0x10
        f.seek(0)
        f.write(data)
    truncated = os.path.join(store, recs[7])
    with open(truncated, "r+b") as f:
        f.truncate(os.path.getsize(truncated) // 2)
    log("phase 3: corrupted %s, truncated %s" % (recs[3], recs[7]))

    # --- Phase 4: cold restart must be warm from disk. ---------------------
    proc = start_daemon(csdf, sock, ["--store-dir", store])
    disk_hits = 0
    for i in range(N):
        raw, resp = request_json(
            sock,
            {"id": i, "type": "analyze", "path": "p%d.mpl" % i,
             "source": program(i)},
        )
        if resp is None or not resp.get("ok"):
            fail("replay request %d failed: %r" % (i, raw))
        if normalize_wall(raw_result(raw)) != golden[i]:
            fail("request %d not byte-identical after restart" % i)
        if resp.get("cached") and resp.get("tier") == "disk":
            disk_hits += 1
        elif resp.get("cached"):
            fail("request %d hit tier %r on a cold daemon"
                 % (i, resp.get("tier")))
    stats = get_stats(sock)
    if disk_hits < 0.9 * N:
        fail("only %d/%d disk-tier hits (<90%%)" % (disk_hits, N))
    if stats["disk_quarantined"] < 2:
        fail("expected >=2 quarantined records, got %s"
             % stats["disk_quarantined"])
    if stats["store_temps_cleaned"] < 1:
        fail("orphan temp from the crash was not cleaned on open")
    qdir = os.path.join(store, "quarantine")
    if not os.path.isdir(qdir) or len(os.listdir(qdir)) < 2:
        fail("quarantine directory missing the damaged records")
    log(
        "phase 4: %d/%d disk hits, %s quarantined, %s temps cleaned"
        % (disk_hits, N, stats["disk_quarantined"],
           stats["store_temps_cleaned"])
    )
    shutdown_daemon(proc, sock, expect_rc=0)


if __name__ == "__main__":
    main()
