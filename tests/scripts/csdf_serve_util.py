"""Shared helpers for the csdf serve end-to-end scripts.

These scripts drive the real `csdf` binary over its unix-socket
transport with raw JSON lines, so they exercise exactly what a client
process sees: framing, structured errors, crash/restart behavior.
"""

import json
import os
import re
import socket
import subprocess
import sys
import time


def log(msg):
    print(msg, flush=True)


def fail(msg):
    print("FAIL: " + msg, flush=True)
    sys.exit(1)


def start_daemon(csdf, sock_path, extra_args=(), env_extra=None):
    """Starts `csdf serve --socket` and waits for the socket to accept."""
    env = dict(os.environ)
    if env_extra:
        env.update(env_extra)
    proc = subprocess.Popen(
        [csdf, "serve", "--socket", sock_path, *extra_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
    )
    deadline = time.time() + 10.0
    while time.time() < deadline:
        if proc.poll() is not None:
            out, err = proc.communicate()
            fail(
                "daemon exited rc=%d before accepting: %s %s"
                % (proc.returncode, out.decode(), err.decode())
            )
        try:
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as s:
                s.connect(sock_path)
            return proc
        except OSError:
            time.sleep(0.02)
    proc.kill()
    fail("daemon socket %s never came up" % sock_path)


def request_line(sock_path, line, timeout=10.0):
    """One request, one response line. Returns the raw line, or None on
    any transport failure (connect refused, EOF mid-line)."""
    try:
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as s:
            s.settimeout(timeout)
            s.connect(sock_path)
            s.sendall(line.encode() + b"\n")
            buf = b""
            while b"\n" not in buf:
                chunk = s.recv(65536)
                if not chunk:
                    return None
                buf += chunk
            return buf.split(b"\n", 1)[0].decode()
    except OSError:
        return None


def request_json(sock_path, obj, timeout=10.0):
    """Sends one JSON request; returns (raw_line, parsed) or (None, None)
    on transport failure. A non-JSON response is a hard failure: the
    daemon's contract is structured output, always."""
    raw = request_line(sock_path, json.dumps(obj), timeout)
    if raw is None:
        return None, None
    try:
        return raw, json.loads(raw)
    except ValueError:
        fail("non-JSON response from daemon: %r" % raw[:200])


def raw_result(line):
    """The "result" member exactly as the daemon sent it (byte-level),
    mirroring ServeTest's extraction: up to the trailing ,"wall_us":N}."""
    start = line.find('"result":')
    if start < 0:
        fail('no "result" in response: %r' % line[:200])
    start += len('"result":')
    end = line.rfind(',"wall_us":')
    if end < 0 or end < start:
        end = len(line) - 1
    return line[start:end]


def normalize_wall(result_bytes):
    """Zeroes the wall_ms measurement inside a "result" payload, the one
    member that legitimately differs between two analyses of the same
    input (mirrors ServeTest's normalizeWallMs)."""
    return re.sub(r'"wall_ms": \d+', '"wall_ms": 0', result_bytes)


def shutdown_daemon(proc, sock_path, expect_rc=0):
    """Sends shutdown, asserts acknowledgment and the pinned exit code."""
    raw, resp = request_json(sock_path, {"type": "shutdown"})
    if resp is None or not resp.get("ok"):
        fail("shutdown not acknowledged: %r" % (raw,))
    try:
        rc = proc.wait(timeout=10)
    except subprocess.TimeoutExpired:
        proc.kill()
        fail("daemon did not exit after shutdown")
    if rc != expect_rc:
        fail("daemon exit code %d after shutdown, want %d" % (rc, expect_rc))


def get_stats(sock_path):
    raw, resp = request_json(sock_path, {"type": "stats"})
    if resp is None or not resp.get("ok"):
        fail("stats request failed: %r" % (raw,))
    return resp["stats"]


def program(i):
    """A tiny distinct-but-deterministic analysis input per index: a
    nearest-neighbor shift with a per-index payload, so every index has
    its own cache key but a stable verdict."""
    return (
        "x = id + %d;\n"
        "if id == 0 then\n"
        "  send x -> id + 1;\n"
        "elif id == np - 1 then\n"
        "  recv y <- id - 1;\n"
        "else\n"
        "  recv y <- id - 1;\n"
        "  send x -> id + 1;\n"
        "end\n" % i
    )
