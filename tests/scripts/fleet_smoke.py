#!/usr/bin/env python3
"""Fleet smoke: three shards behind the consistent-hash router (real
binaries, real unix sockets).

Phases:
  1. Golden run: one plain daemon analyzes the corpus; its normalized
     results are the byte-identity reference for everything the fleet
     answers.
  2. Fleet run: 3 shards (each with --memo-dir) + router. The corpus goes
     through the router; every answer must be byte-identical to the
     golden run, carry a "shard" member, and spread over >1 shard.
  3. kill -9 one shard mid-run, replay the whole corpus through the
     router: zero non-retryable client-visible errors (failover absorbs
     the loss), results still byte-identical.
  4. Restart the killed shard on its memo dir: it must adopt a nonzero
     snapshot, and replaying the corpus against it directly must cost
     fewer full closure calls than the same corpus against a cold shard.
  5. `csdf client` end to end through the router (--tenant, --verbose
     narrating the answering shard).

Usage: fleet_smoke.py <csdf-binary> [stats-dir]

With a stats-dir, the final router and per-shard stats are dumped there
as JSON (the CI job uploads them as artifacts).
"""

import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from csdf_serve_util import (
    fail,
    get_stats,
    log,
    normalize_wall,
    program,
    raw_result,
    request_json,
    shutdown_daemon,
    start_daemon,
)

N = 24  # corpus size; distinct cache keys spread over the ring


def start_router(csdf, sock_path, backends):
    proc = subprocess.Popen(
        [csdf, "router", "--socket", sock_path, "--health-interval-ms", "50"]
        + [arg for b in backends for arg in ("--backend", b)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )
    deadline = time.time() + 10.0
    while time.time() < deadline:
        if proc.poll() is not None:
            out, err = proc.communicate()
            fail("router exited rc=%d before accepting: %s %s"
                 % (proc.returncode, out.decode(), err.decode()))
        import socket as socketmod
        try:
            with socketmod.socket(socketmod.AF_UNIX,
                                  socketmod.SOCK_STREAM) as s:
                s.connect(sock_path)
            return proc
        except OSError:
            time.sleep(0.02)
    proc.kill()
    fail("router socket %s never came up" % sock_path)


def fleet_request(sock, i, nonretryable):
    """One corpus request through the router, honoring retryable errors.
    Any non-retryable error is the failure the fleet contract forbids."""
    obj = {"id": i, "type": "analyze", "path": "p%d.mpl" % i,
           "source": program(i), "tenant": "smoke",
           "options": {"fixed_np": 4 + (i % 8)}}
    for _ in range(10):
        raw, resp = request_json(sock, obj)
        if resp is None:
            time.sleep(0.05)
            continue
        if resp.get("ok"):
            return raw, resp
        if not resp.get("retryable"):
            nonretryable.append(raw)
            return raw, resp
        time.sleep((resp.get("retry_after_ms") or 50) / 1000.0)
    fail("request %d never succeeded through the router" % i)


def run_corpus_direct(sock):
    """The corpus straight at one shard (no router)."""
    for i in range(N):
        raw, resp = request_json(
            sock,
            {"id": i, "type": "analyze", "path": "p%d.mpl" % i,
             "source": program(i),
             "options": {"fixed_np": 4 + (i % 8)}},
        )
        if resp is None or not resp.get("ok"):
            fail("direct request %d failed: %r" % (i, raw))


def dump_stats(stats_dir, name, stats):
    if not stats_dir:
        return
    os.makedirs(stats_dir, exist_ok=True)
    with open(os.path.join(stats_dir, name + ".json"), "w") as f:
        json.dump(stats, f, indent=2, sort_keys=True)


def main():
    csdf = sys.argv[1]
    stats_dir = sys.argv[2] if len(sys.argv) > 2 else None
    work = tempfile.mkdtemp(prefix="csdf-fleet-")
    try:
        run(csdf, work, stats_dir)
    finally:
        shutil.rmtree(work, ignore_errors=True)
    log("PASS: fleet smoke")


def run(csdf, work, stats_dir=None):
    # --- Phase 1: golden single-daemon results. ----------------------------
    solo_sock = os.path.join(work, "solo.sock")
    solo = start_daemon(csdf, solo_sock)
    golden = {}
    for i in range(N):
        raw, resp = request_json(
            solo_sock,
            {"id": i, "type": "analyze", "path": "p%d.mpl" % i,
             "source": program(i),
             "options": {"fixed_np": 4 + (i % 8)}},
        )
        if resp is None or not resp.get("ok"):
            fail("golden request %d failed: %r" % (i, raw))
        golden[i] = normalize_wall(raw_result(raw))
    shutdown_daemon(solo, solo_sock)
    log("phase 1: %d golden results from a single daemon" % N)

    # --- Phase 2: the fleet answers byte-identically. ----------------------
    shard_socks = [os.path.join(work, "shard%d.sock" % s) for s in range(3)]
    memo_dirs = [os.path.join(work, "memo%d" % s) for s in range(3)]
    shards = [
        start_daemon(csdf, shard_socks[s],
                     ["--memo-dir", memo_dirs[s], "--memo-flush-every", "1"])
        for s in range(3)
    ]
    router_sock = os.path.join(work, "router.sock")
    router = start_router(csdf, router_sock, shard_socks)

    nonretryable = []
    answered_by = {}
    for i in range(N):
        raw, resp = fleet_request(router_sock, i, nonretryable)
        if normalize_wall(raw_result(raw)) != golden[i]:
            fail("request %d differs from the single-daemon result" % i)
        shard = resp.get("shard")
        if not shard:
            fail("response %d lacks the shard member: %r" % (i, raw))
        answered_by[i] = shard
    if nonretryable:
        fail("non-retryable errors on a healthy fleet: %r" % nonretryable[0])
    used = set(answered_by.values())
    if len(used) < 2:
        fail("corpus landed on %d shard(s); ring is not spreading" % len(used))
    log("phase 2: %d results byte-identical, spread over %d shards"
        % (N, len(used)))

    # --- Phase 3: kill -9 the busiest shard, replay everything. ------------
    counts = {s: 0 for s in shard_socks}
    for s in answered_by.values():
        counts[s] += 1
    victim_sock = max(counts, key=counts.get)
    victim_idx = shard_socks.index(victim_sock)
    shards[victim_idx].send_signal(signal.SIGKILL)
    shards[victim_idx].wait(timeout=10)
    log("phase 3: killed shard %d (answered %d/%d requests)"
        % (victim_idx, counts[victim_sock], N))

    for i in range(N):
        raw, resp = fleet_request(router_sock, i, nonretryable)
        if normalize_wall(raw_result(raw)) != golden[i]:
            fail("request %d differs after the shard kill" % i)
        if resp.get("shard") == victim_sock:
            fail("request %d claims the dead shard answered it" % i)
    if nonretryable:
        fail("kill -9 leaked a non-retryable error: %r" % nonretryable[0])

    raw, resp = request_json(router_sock, {"type": "stats"})
    rstats = resp["stats"]
    if rstats["failovers"] < 1:
        fail("router reports no failovers after a shard kill: %r" % rstats)
    log("phase 3: replay clean (0 non-retryable), %d failovers"
        % rstats["failovers"])

    # --- Phase 4: the restarted shard is warm from its memo snapshot. ------
    shards[victim_idx] = start_daemon(
        csdf, victim_sock,
        ["--memo-dir", memo_dirs[victim_idx], "--memo-flush-every", "1"])
    warm_stats = get_stats(victim_sock)
    if warm_stats["memo_adopted"] < 1:
        fail("restarted shard adopted no memo entries: %r" % warm_stats)
    run_corpus_direct(victim_sock)
    warm_after = get_stats(victim_sock)
    warm_closures = (warm_after["closure_full_calls"]
                     - warm_stats["closure_full_calls"])

    cold_sock = os.path.join(work, "cold.sock")
    cold = start_daemon(csdf, cold_sock)
    cold_before = get_stats(cold_sock)
    run_corpus_direct(cold_sock)
    cold_after = get_stats(cold_sock)
    cold_closures = (cold_after["closure_full_calls"]
                     - cold_before["closure_full_calls"])
    shutdown_daemon(cold, cold_sock)

    if cold_closures < 1:
        fail("corpus triggered no full closures; the comparison is vacuous")
    if warm_closures >= cold_closures:
        fail("adopted memo saved nothing: warm %d vs cold %d full closures"
             % (warm_closures, cold_closures))
    log("phase 4: adopted %d entries; %d full closures warm vs %d cold"
        % (warm_stats["memo_adopted"], warm_closures, cold_closures))

    # --- Phase 5: csdf client through the router. --------------------------
    mpl = os.path.join(work, "client.mpl")
    with open(mpl, "w") as f:
        f.write(program(0))
    cp = subprocess.run(
        [csdf, "client", "analyze", mpl, "--socket", router_sock,
         "--send-source", "--tenant", "smoke", "--verbose"],
        capture_output=True, timeout=60)
    if cp.returncode not in (0, 1):
        fail("csdf client rc=%d through the router: %s"
             % (cp.returncode, cp.stderr.decode()))
    if "shard" not in cp.stderr.decode():
        fail("client --verbose did not narrate the answering shard: %r"
             % cp.stderr.decode())
    log("phase 5: csdf client rc=%d via router, shard narrated"
        % cp.returncode)

    # --- Final stats (CI artifacts), then clean shutdown. ------------------
    raw, resp = request_json(router_sock, {"type": "stats"})
    dump_stats(stats_dir, "router", resp["stats"])
    for s in range(3):
        dump_stats(stats_dir, "shard%d" % s, get_stats(shard_socks[s]))
    shutdown_daemon(router, router_sock)
    for s, proc in enumerate(shards):
        shutdown_daemon(proc, shard_socks[s])


if __name__ == "__main__":
    main()
