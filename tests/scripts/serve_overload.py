#!/usr/bin/env python3
"""Overload shedding + client retry smoke (real binary).

1. Saturate a daemon's admission gate (--max-inflight + --queue-depth)
   with idle connections; the next connection must be shed immediately
   with a structured, retryable `overloaded` error.
2. Run `csdf client` against the saturated daemon while the idle
   connections drain shortly after: the client's capped-backoff retry
   must recover and exit 0.
3. `csdf client` retry also recovers from a daemon that comes up late
   (connect refused is retryable).

Usage: serve_overload.py <csdf-binary>
"""

import json
import os
import select
import shutil
import socket
import subprocess
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from csdf_serve_util import (
    fail,
    get_stats,
    log,
    program,
    request_json,
    shutdown_daemon,
    start_daemon,
)

MAX_INFLIGHT = 2
QUEUE_DEPTH = 2


def main():
    csdf = sys.argv[1]
    work = tempfile.mkdtemp(prefix="csdf-overload-")
    sock = os.path.join(work, "serve.sock")
    mpl = os.path.join(work, "probe.mpl")
    with open(mpl, "w") as f:
        f.write(program(0))
    try:
        run(csdf, sock, mpl)
    finally:
        shutil.rmtree(work, ignore_errors=True)
    log("PASS: serve overload + client retry")


def saturate(sock, n):
    idle = []
    for _ in range(n):
        s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        s.connect(sock)
        idle.append(s)
    for _ in range(50):
        time.sleep(0.1)
        readable, _, _ = select.select(idle, [], [], 0)
        if not readable:
            return idle  # all n admitted and silently held
        for s in readable:
            idle.remove(s)
            s.close()
            ns = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            ns.connect(sock)
            idle.append(ns)
    fail("could not hold %d idle connections open" % n)


def run(csdf, sock, mpl):
    proc = start_daemon(
        csdf, sock,
        ["--max-inflight", str(MAX_INFLIGHT),
         "--queue-depth", str(QUEUE_DEPTH)],
    )

    # --- Saturate: idle admitted connections hold inflight slots. ----------
    # An idle connection can itself be shed at admission if it races a
    # just-closing connection's slot release (e.g. start_daemon's health
    # probe), so hold-and-replace until all N are silently admitted: a
    # held connection never becomes readable, a shed one does (it got
    # the overloaded line and a close).
    idle = saturate(sock, MAX_INFLIGHT + QUEUE_DEPTH)

    raw, resp = request_json(
        sock, {"type": "analyze", "path": mpl}, timeout=5.0
    )
    if resp is None:
        fail("shed connection got no response line at all")
    if resp.get("ok") or resp.get("code") != "overloaded":
        fail("expected structured overloaded error, got %r" % raw)
    if not resp.get("retryable") or "retry_after_ms" not in resp:
        fail("overloaded error is not marked retryable: %r" % raw)
    log("saturated daemon shed the probe with a structured error")

    # --- csdf client retries through the overload. -------------------------
    def drain_later():
        time.sleep(0.5)
        for s in idle:
            s.close()

    t = threading.Thread(target=drain_later)
    t.start()
    client = subprocess.run(
        [csdf, "client", "analyze", mpl, "--socket", sock,
         "--retries", "8", "--retry-base-ms", "50"],
        capture_output=True, text=True, timeout=30,
    )
    t.join()
    if client.returncode != 0:
        fail("csdf client did not recover from overload: rc=%d stderr=%s"
             % (client.returncode, client.stderr))
    line = client.stdout.strip().splitlines()[-1]
    if not json.loads(line).get("ok"):
        fail("client's final response is not ok: %r" % line)
    log("csdf client recovered once the overload drained")

    stats = get_stats(sock)
    if stats["shed_connections"] < 1:
        fail("shed_connections counter not bumped: %s"
             % stats["shed_connections"])
    shutdown_daemon(proc, sock, expect_rc=0)

    # --- Late daemon: connect-refused is retryable too. --------------------
    late = {}

    def start_later():
        time.sleep(0.5)
        late["proc"] = start_daemon(csdf, sock)

    t = threading.Thread(target=start_later)
    t.start()
    client = subprocess.run(
        [csdf, "client", "stats", "--socket", sock,
         "--retries", "10", "--retry-base-ms", "50"],
        capture_output=True, text=True, timeout=30,
    )
    t.join()
    if client.returncode != 0:
        fail("csdf client did not recover from late daemon: rc=%d stderr=%s"
             % (client.returncode, client.stderr))
    shutdown_daemon(late["proc"], sock, expect_rc=0)
    log("csdf client recovered from connect-refused")


if __name__ == "__main__":
    main()
