#!/usr/bin/env python3
"""Timed fault-injection soak for `csdf serve` (real binary).

Runs rounds until the time budget is spent. Each round starts a daemon
over a shared store with a randomly chosen fault spec (CSDF_FAULT) and
fires a burst of requests. The contract under any injected fault:

  * every response line the daemon emits parses as structured JSON
    (ok, or an error envelope with a code) — zero non-structured
    failures;
  * store-level faults never crash the daemon (exit stays orderly);
  * the serve-crash-* sites kill the daemon only with their own pinned
    exit codes (137 / 141), and the next round's restart recovers;
  * no round ever serves wrong bytes: responses for a key always match
    the first bytes ever computed for it.

The chosen spec is printed per round, so any failure reproduces from
the log alone (the injector itself is deterministic).

Usage: serve_soak.py <csdf-binary> [seconds] [stats-out.json]
"""

import json
import os
import random
import shutil
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from csdf_serve_util import (
    fail,
    get_stats,
    log,
    program,
    normalize_wall,
    raw_result,
    request_json,
    shutdown_daemon,
    start_daemon,
)

STORE_SITES = [
    "store-write-fail",
    "store-short-write",
    "store-torn-write",
    "store-corrupt",
    "store-read-fail",
]
CRASH_SITES = ["serve-crash-write", "serve-crash-response"]
CRASH_EXITS = {"serve-crash-write": 137, "serve-crash-response": 141}
BURST = 12


def random_spec(rng):
    """A random one- or two-site spec; crash sites always get a hit
    count so the daemon survives long enough to show recovery."""
    if rng.random() < 0.3:
        site = rng.choice(CRASH_SITES)
        return "%s:%d" % (site, rng.randint(2, BURST)), site
    sites = rng.sample(STORE_SITES, rng.randint(1, 2))
    parts = []
    for s in sites:
        form = rng.randint(0, 2)
        if form == 0:
            parts.append(s)
        elif form == 1:
            parts.append("%s:%d" % (s, rng.randint(1, BURST)))
        else:
            parts.append("%s:%d+" % (s, rng.randint(1, BURST)))
    return ",".join(parts), None


def main():
    csdf = sys.argv[1]
    budget = float(sys.argv[2]) if len(sys.argv) > 2 else 10.0
    stats_out = sys.argv[3] if len(sys.argv) > 3 else None
    seed = int(os.environ.get("CSDF_SOAK_SEED", random.randrange(1 << 30)))
    rng = random.Random(seed)
    log("soak: %.0fs budget, seed %d (CSDF_SOAK_SEED reruns it)"
        % (budget, seed))

    work = tempfile.mkdtemp(prefix="csdf-soak-")
    store = os.path.join(work, "store")
    sock = os.path.join(work, "serve.sock")
    golden = {}  # key index -> first result bytes ever seen
    rounds = responses = transport_drops = 0
    deadline = time.time() + budget
    try:
        while time.time() < deadline:
            spec, crash_site = random_spec(rng)
            rounds += 1
            log("round %d: CSDF_FAULT=%s" % (rounds, spec))
            proc = start_daemon(
                csdf, sock, ["--store-dir", store],
                env_extra={"CSDF_FAULT": spec},
            )
            dropped = False
            for i in range(BURST):
                key = rng.randrange(8)  # small keyspace -> cache traffic
                raw, resp = request_json(
                    sock,
                    {"id": i, "type": "analyze", "path": "s%d.mpl" % key,
                     "source": program(key)},
                    timeout=15.0,
                )
                if raw is None:
                    # Transport drop: legal only when a crash site is
                    # armed (the daemon is allowed to die mid-burst).
                    if crash_site is None and proc.poll() is None:
                        fail("round %d: transport drop with no crash site"
                             % rounds)
                    transport_drops += 1
                    dropped = True
                    break
                responses += 1
                if resp.get("ok"):
                    bytes_ = normalize_wall(raw_result(raw))
                    if key in golden and bytes_ != golden[key]:
                        fail("round %d: wrong bytes for key %d"
                             % (rounds, key))
                    golden.setdefault(key, bytes_)
                elif "code" not in resp:
                    fail("round %d: unstructured error: %r" % (rounds, raw))
            if crash_site and dropped:
                # The injected crash: the exit code must be the site's
                # pinned one, never a real crash signature.
                try:
                    rc = proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    fail("round %d: transport drop but daemon still alive"
                         % rounds)
                if rc != CRASH_EXITS[crash_site]:
                    fail("round %d: %s exit rc=%d, want %d"
                         % (rounds, crash_site, rc,
                            CRASH_EXITS[crash_site]))
                continue
            if proc.poll() is not None:
                fail("round %d: daemon died rc=%d without a crash site firing"
                     % (rounds, proc.returncode))
            shutdown_daemon(proc, sock, expect_rc=0)

        # Final clean round: restart with no faults; the store must still
        # open and the whole keyspace must hit disk byte-identically.
        proc = start_daemon(csdf, sock, ["--store-dir", store])
        for key in sorted(golden):
            raw, resp = request_json(
                sock,
                {"type": "analyze", "path": "s%d.mpl" % key,
                 "source": program(key)},
            )
            if resp is None or not resp.get("ok"):
                fail("clean round: key %d failed: %r" % (key, raw))
            if normalize_wall(raw_result(raw)) != golden[key]:
                fail("clean round: wrong bytes for key %d" % key)
        stats = get_stats(sock)
        shutdown_daemon(proc, sock, expect_rc=0)
        if stats_out:
            stats["soak_rounds"] = rounds
            stats["soak_responses"] = responses
            stats["soak_transport_drops"] = transport_drops
            stats["soak_seed"] = seed
            with open(stats_out, "w") as f:
                json.dump(stats, f, indent=2, sort_keys=True)
                f.write("\n")
            log("store stats written to %s" % stats_out)
    finally:
        shutil.rmtree(work, ignore_errors=True)
    log("PASS: soak, %d rounds, %d structured responses, %d crash drops"
        % (rounds, responses, transport_drops))


if __name__ == "__main__":
    main()
