//===- tests/driver/BatchTest.cpp - Session + batch driver tests -----------===//
//
// End-to-end tests for the fail-safe session layer and the crash-isolated
// batch driver: a mixed corpus (clean, degraded, crashing, internal-error,
// sleeping, syntactically broken) must produce one structured entry per
// file, with the batch driver itself surviving every member.
//
//===----------------------------------------------------------------------===//

#include "api/Csdf.h"
#include "driver/Batch.h"
#include "driver/Session.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <regex>
#include <unistd.h>

using namespace csdf;
namespace fs = std::filesystem;

namespace {

/// A scratch directory of .mpl files, removed on destruction.
struct TempCorpus {
  fs::path Dir;
  TempCorpus() {
    Dir = fs::temp_directory_path() /
          ("csdf-batch-test-" + std::to_string(::getpid()));
    fs::create_directories(Dir);
  }
  ~TempCorpus() {
    std::error_code Ec;
    fs::remove_all(Dir, Ec);
  }
  std::string add(const std::string &Name, const std::string &Source) {
    fs::path P = Dir / Name;
    std::ofstream(P) << Source;
    return P.string();
  }
};

const char *CleanSource = "if id == 0 then\n"
                          "  x = 42;\n"
                          "  send x -> 1;\n"
                          "elif id == 1 then\n"
                          "  recv y <- 0;\n"
                          "  print y;\n"
                          "end\n";

//===--------------------------------------------------------------------===//
// Session layer
//===--------------------------------------------------------------------===//

TEST(SessionTest, CleanProgramCompletesWithExitZero) {
  SessionOptions Opts;
  Opts.Analysis = AnalysisOptions::simpleSymbolic();
  SessionResult R = runAnalysisSession("clean.mpl", CleanSource, Opts);
  EXPECT_EQ(R.ExitCode, SessionExitComplete);
  EXPECT_TRUE(R.Outcome.complete());
  EXPECT_FALSE(R.FrontEndErrors);
  ASSERT_NE(R.Graph, nullptr);
  EXPECT_EQ(R.Report.Analysis.matchedNodePairs().size(), 1u);
}

TEST(SessionTest, FrontEndErrorsExitOne) {
  SessionResult R = runAnalysisSession("bad.mpl", "x = ;\n", SessionOptions());
  EXPECT_EQ(R.ExitCode, SessionExitFindings);
  EXPECT_TRUE(R.FrontEndErrors);
  EXPECT_NE(R.Error.find("bad.mpl"), std::string::npos);
}

TEST(SessionTest, InternalErrorHookRecoversWithExitThree) {
  SessionOptions Opts;
  Opts.EnableTestHooks = true;
  SessionResult R = runAnalysisSession(
      "hook.mpl", "# csdf-test: internal-error\nx = 1;\nprint x;\n", Opts);
  EXPECT_EQ(R.ExitCode, SessionExitInternal);
  EXPECT_TRUE(R.Outcome.internalError());
  EXPECT_NE(R.Outcome.Reason.find("internal-error hook"), std::string::npos);
}

TEST(SessionTest, HooksIgnoredWhenDisabled) {
  // Without EnableTestHooks the directive is just a comment.
  SessionResult R = runAnalysisSession(
      "hook.mpl", "# csdf-test: internal-error\nx = 1;\nprint x;\n",
      SessionOptions());
  EXPECT_EQ(R.ExitCode, SessionExitComplete);
  EXPECT_TRUE(R.Outcome.complete());
}

TEST(SessionTest, UnreadableAndEmptyFilesAreUsageErrors) {
  std::string Source, Error;
  EXPECT_FALSE(readSessionFile("/nonexistent/definitely-missing.mpl", Source,
                               Error));
  EXPECT_NE(Error.find("cannot read"), std::string::npos);
  TempCorpus Corpus;
  std::string Empty = Corpus.add("empty.mpl", "  \n\t\n");
  EXPECT_FALSE(readSessionFile(Empty, Source, Error));
  EXPECT_NE(Error.find("is empty"), std::string::npos);
}

TEST(SessionTest, BudgetSnapshotIsStamped) {
  SessionOptions Opts;
  Opts.Analysis = AnalysisOptions::simpleSymbolic();
  Opts.DeadlineMs = 60000;
  SessionResult R = runAnalysisSession("clean.mpl", CleanSource, Opts);
  EXPECT_EQ(R.ExitCode, SessionExitComplete);
  // DBM allocations were accounted while the session budget was active.
  EXPECT_GT(R.PeakDbmBytes, 0u);
}

//===--------------------------------------------------------------------===//
// Batch driver
//===--------------------------------------------------------------------===//

#ifndef _WIN32

TEST(BatchTest, MixedCorpusIsolatesEveryFailureMode) {
  TempCorpus Corpus;
  Corpus.add("clean.mpl", CleanSource);
  Corpus.add("crasher.mpl", "# csdf-test: crash\nx = 1;\nprint x;\n");
  Corpus.add("internal.mpl", "# csdf-test: internal-error\nx = 1;\nprint x;\n");
  Corpus.add("sleeper.mpl", "# csdf-test: sleep-ms 60000\nx = 1;\nprint x;\n");
  Corpus.add("syntax.mpl", "x = ;\n");

  std::vector<std::string> Files;
  std::string Error;
  ASSERT_TRUE(collectBatchInputs(Corpus.Dir.string(), Files, Error)) << Error;
  ASSERT_EQ(Files.size(), 5u);

  BatchOptions Opts;
  Opts.Session.Analysis = AnalysisOptions::simpleSymbolic();
  Opts.Session.EnableTestHooks = true;
  Opts.Jobs = 4;
  Opts.TimeoutMs = 2000;
  BatchReport Report = runBatchFork(Files, Opts);

  ASSERT_EQ(Report.Entries.size(), 5u);
  EXPECT_FALSE(Report.allComplete());
  EXPECT_EQ(Report.Complete, 1u);
  EXPECT_EQ(Report.Crashes, 1u);
  EXPECT_EQ(Report.InternalErrors, 1u);
  EXPECT_EQ(Report.Timeouts, 1u);
  EXPECT_EQ(Report.Findings, 1u); // the syntax error

  // Entries come back sorted by input order; spot-check each verdict.
  auto Find = [&](const std::string &Stem) -> const BatchEntry & {
    for (const BatchEntry &E : Report.Entries)
      if (E.File.find(Stem) != std::string::npos)
        return E;
    static BatchEntry Missing;
    ADD_FAILURE() << "no entry for " << Stem;
    return Missing;
  };
  EXPECT_EQ(Find("clean.mpl").Verdict, "complete");
  EXPECT_EQ(Find("clean.mpl").Reason, BatchExitReason::Exited);
  EXPECT_EQ(Find("crasher.mpl").Verdict, "crash");
  EXPECT_EQ(Find("crasher.mpl").Reason, BatchExitReason::Signaled);
  EXPECT_EQ(Find("internal.mpl").Verdict, "internal-error");
  EXPECT_EQ(Find("internal.mpl").ExitCode, SessionExitInternal);
  EXPECT_EQ(Find("sleeper.mpl").Verdict, "timeout");
  EXPECT_EQ(Find("sleeper.mpl").Reason, BatchExitReason::TimedOut);
  EXPECT_EQ(Find("syntax.mpl").Verdict, "front-end-errors");
}

TEST(BatchTest, JsonReportIsWellFormedAndStable) {
  TempCorpus Corpus;
  Corpus.add("clean.mpl", CleanSource);
  Corpus.add("internal.mpl", "# csdf-test: internal-error\nx = 1;\nprint x;\n");

  std::vector<std::string> Files;
  std::string Error;
  ASSERT_TRUE(collectBatchInputs(Corpus.Dir.string(), Files, Error)) << Error;

  BatchOptions Opts;
  Opts.Session.Analysis = AnalysisOptions::simpleSymbolic();
  Opts.Session.EnableTestHooks = true;
  BatchReport Report = runBatchFork(Files, Opts);
  std::string Json = Report.json();

  // Normalize the volatile fields (timings, memory, absolute paths) so the
  // remainder is a golden string.
  Json = std::regex_replace(Json, std::regex("\"wall_ms\": \\d+"),
                            "\"wall_ms\": 0");
  Json = std::regex_replace(Json, std::regex("\"peak_rss_kb\": \\d+"),
                            "\"peak_rss_kb\": 0");
  Json = std::regex_replace(Json, std::regex("\"file\": \"[^\"]*/"),
                            "\"file\": \"");
  Json = std::regex_replace(
      Json, std::regex("\\(/[^)]*Session\\.cpp:\\d+\\)"), "(Session.cpp)");

  EXPECT_EQ(Json,
            "{\n"
            "  \"summary\": {\"files\": 2, \"complete\": 1, \"findings\": 0, "
            "\"usage_errors\": 0, \"internal_errors\": 1, \"crashes\": 0, "
            "\"timeouts\": 0},\n"
            "  \"files\": [\n"
            "    {\"file\": \"clean.mpl\", \"verdict\": \"complete\", "
            "\"exit_reason\": \"exited\", \"exit_code\": 0, \"signal\": 0, "
            "\"detail\": \"\", \"wall_ms\": 0, \"peak_rss_kb\": 0},\n"
            "    {\"file\": \"internal.mpl\", \"verdict\": "
            "\"internal-error\", \"exit_reason\": \"exited\", \"exit_code\": "
            "3, \"signal\": 0, \"detail\": \"csdf-test: internal-error hook "
            "(Session.cpp)\", \"wall_ms\": 0, \"peak_rss_kb\": 0}\n"
            "  ]\n"
            "}\n");
}

TEST(BatchTest, ThreadsModeMatchesForkModeVerdicts) {
  // The in-process threads mode must agree with fork mode entry for entry
  // on everything short of a hard crash: same verdicts, same exit codes,
  // same summary counts. (Crashers and uninterruptible sleepers are fork
  // mode's reason to exist and are excluded here.)
  TempCorpus Corpus;
  Corpus.add("clean.mpl", CleanSource);
  Corpus.add("internal.mpl", "# csdf-test: internal-error\nx = 1;\nprint x;\n");
  Corpus.add("leak.mpl", "if id == 0 then\n"
                         "  x = 1;\n"
                         "  send x -> 1;\n"
                         "  send x -> 1;\n"
                         "elif id == 1 then\n"
                         "  recv y <- 0;\n"
                         "end\n");
  Corpus.add("syntax.mpl", "x = ;\n");

  std::vector<std::string> Files;
  std::string Error;
  ASSERT_TRUE(collectBatchInputs(Corpus.Dir.string(), Files, Error)) << Error;
  ASSERT_EQ(Files.size(), 4u);

  // Both isolation modes through the facade — the one construction path
  // every front end uses.
  api::BatchRequest Req;
  Req.Files = Files;
  Req.Options.Client = "linear";
  Req.Options.TestHooks = true;
  Req.Jobs = 4;

  api::Analyzer An;
  Req.Mode = BatchMode::Fork;
  BatchReport Fork = An.runBatch(Req);
  Req.Mode = BatchMode::Threads;
  BatchReport Threads = An.runBatch(Req);

  ASSERT_EQ(Threads.Entries.size(), Fork.Entries.size());
  for (size_t I = 0; I < Fork.Entries.size(); ++I) {
    const BatchEntry &F = Fork.Entries[I];
    const BatchEntry &T = Threads.Entries[I];
    EXPECT_EQ(T.File, F.File);
    EXPECT_EQ(T.Verdict, F.Verdict) << F.File;
    EXPECT_EQ(T.ExitCode, F.ExitCode) << F.File;
    // Threads mode never forks, so every entry reports a normal exit and
    // no per-file RSS figure (one shared address space).
    EXPECT_EQ(T.Reason, BatchExitReason::Exited) << F.File;
    EXPECT_EQ(T.PeakRssKb, 0u) << F.File;
  }
  EXPECT_EQ(Threads.Complete, Fork.Complete);
  EXPECT_EQ(Threads.Findings, Fork.Findings);
  EXPECT_EQ(Threads.UsageErrors, Fork.UsageErrors);
  EXPECT_EQ(Threads.InternalErrors, Fork.InternalErrors);
  EXPECT_EQ(Threads.Crashes, 0u);
  EXPECT_EQ(Threads.Timeouts, 0u);
}

TEST(BatchTest, ThreadsModeSerialAndParallelAgree) {
  // The shared cross-session closure memo must not change any verdict:
  // jobs=1 and jobs=4 threads runs of the same corpus agree exactly.
  TempCorpus Corpus;
  Corpus.add("a.mpl", CleanSource);
  Corpus.add("b.mpl", CleanSource);
  Corpus.add("c.mpl", CleanSource);

  std::vector<std::string> Files;
  std::string Error;
  ASSERT_TRUE(collectBatchInputs(Corpus.Dir.string(), Files, Error)) << Error;

  api::BatchRequest Req;
  Req.Files = Files;
  Req.Mode = BatchMode::Threads;

  api::Analyzer An;
  Req.Jobs = 1;
  BatchReport Serial = An.runBatch(Req);
  Req.Jobs = 4;
  BatchReport Parallel = An.runBatch(Req);

  ASSERT_EQ(Serial.Entries.size(), 3u);
  ASSERT_EQ(Parallel.Entries.size(), 3u);
  EXPECT_TRUE(Serial.allComplete());
  EXPECT_TRUE(Parallel.allComplete());
  for (size_t I = 0; I < 3; ++I) {
    EXPECT_EQ(Parallel.Entries[I].Verdict, Serial.Entries[I].Verdict);
    EXPECT_EQ(Parallel.Entries[I].Detail, Serial.Entries[I].Detail);
  }
}

TEST(BatchTest, BatchModeNamesAreStable) {
  EXPECT_STREQ(batchModeName(BatchMode::Fork), "fork");
  EXPECT_STREQ(batchModeName(BatchMode::Threads), "threads");
}

TEST(BatchTest, FileListInputsAndMissingDirErrors) {
  TempCorpus Corpus;
  std::string Clean = Corpus.add("clean.mpl", CleanSource);
  std::string List =
      Corpus.add("inputs.txt", "# a comment\n\n" + Clean + "\n");

  std::vector<std::string> Files;
  std::string Error;
  ASSERT_TRUE(collectBatchInputs(List, Files, Error)) << Error;
  ASSERT_EQ(Files.size(), 1u);
  EXPECT_EQ(Files[0], Clean);

  Files.clear();
  EXPECT_FALSE(collectBatchInputs("/nonexistent/corpus-dir-xyz", Files,
                                  Error));
  EXPECT_FALSE(Error.empty());
}

#endif // !_WIN32

} // namespace
