//===- tests/driver/LspTest.cpp - LSP server message-level tests -----------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Drives LspServer::handleMessage directly — the transport-agnostic seam
// runLsp() wires to framed stdio — through the full editor lifecycle:
// initialize, didOpen/didChange publishing diagnostics, didClose clearing
// them, shutdown/exit. The diagnostics the server publishes must agree
// with what api::Analyzer::lint reports for the same text (the CI
// lsp-smoke job re-checks this against the installed `csdf lint` binary).
//
//===----------------------------------------------------------------------===//

#include "api/Csdf.h"
#include "diag/DiagRenderer.h"
#include "driver/Lsp.h"
#include "support/Json.h"
#include "support/Version.h"

#include <gtest/gtest.h>

using namespace csdf;

namespace {

/// One JSON-RPC message body (strings pre-escaped by the caller).
std::string msg(const std::string &Inner) {
  return "{\"jsonrpc\":\"2.0\"," + Inner + "}";
}

std::string didOpen(const std::string &Uri, const std::string &Text) {
  return msg("\"method\":\"textDocument/didOpen\",\"params\":{"
             "\"textDocument\":{\"uri\":\"" +
             Uri + "\",\"text\":\"" + jsonEscape(Text) + "\"}}");
}

std::string didChange(const std::string &Uri, const std::string &Text) {
  return msg("\"method\":\"textDocument/didChange\",\"params\":{"
             "\"textDocument\":{\"uri\":\"" +
             Uri + "\"},\"contentChanges\":[{\"text\":\"" + jsonEscape(Text) +
             "\"}]}");
}

JsonValue parsed(const std::string &Body) {
  JsonValue V;
  std::string Error;
  EXPECT_TRUE(parseJson(Body, V, Error)) << Error << "\n" << Body;
  return V;
}

/// The publishDiagnostics params for \p Uri, failing the test when the
/// message is missing or malformed.
JsonValue publishedParams(const std::vector<std::string> &Out,
                          const std::string &Uri) {
  for (const std::string &Body : Out) {
    JsonValue V = parsed(Body);
    const JsonValue *Method = V.get("method");
    if (!Method || !Method->isString() ||
        Method->asString() != "textDocument/publishDiagnostics")
      continue;
    const JsonValue *Params = V.get("params");
    EXPECT_TRUE(Params && Params->get("uri") &&
                Params->get("uri")->asString() == Uri);
    return *Params;
  }
  ADD_FAILURE() << "no publishDiagnostics for " << Uri;
  return JsonValue();
}

const char *DeadStore = "x = 1;\nx = 2;\nprint x;\n";

TEST(LspTest, InitializeAdvertisesFullSync) {
  LspServer Server((LspOptions()));
  std::vector<std::string> Out;
  ASSERT_TRUE(Server.handleMessage(
      msg("\"id\":1,\"method\":\"initialize\",\"params\":{}"), Out));
  ASSERT_EQ(Out.size(), 1u);

  JsonValue V = parsed(Out[0]);
  ASSERT_TRUE(V.get("id") && V.get("id")->asInt() == 1);
  const JsonValue *Result = V.get("result");
  ASSERT_TRUE(Result);
  const JsonValue *Sync = Result->get("capabilities")
                              ? Result->get("capabilities")->get("textDocumentSync")
                              : nullptr;
  ASSERT_TRUE(Sync);
  EXPECT_EQ(Sync->asInt(), 1); // full-document sync
  const JsonValue *Info = Result->get("serverInfo");
  ASSERT_TRUE(Info);
  EXPECT_EQ(Info->get("name")->asString(), "csdf");
  EXPECT_EQ(Info->get("version")->asString(), toolVersion());
}

TEST(LspTest, DidOpenPublishesLintDiagnostics) {
  LspServer Server((LspOptions()));
  std::vector<std::string> Out;
  ASSERT_TRUE(Server.handleMessage(didOpen("file:///tmp/ds.mpl", DeadStore),
                                   Out));

  JsonValue Params = publishedParams(Out, "file:///tmp/ds.mpl");
  const JsonValue *Diags = Params.get("diagnostics");
  ASSERT_TRUE(Diags && Diags->isArray());

  // The published set must agree with a direct lint of the same text.
  api::Analyzer Cold;
  api::LintRequest Req;
  Req.Path = "/tmp/ds.mpl";
  Req.Source = std::string(DeadStore);
  api::LintResponse Expect = Cold.lint(Req);
  ASSERT_EQ(Diags->asArray().size(), Expect.Diagnostics.size());
  ASSERT_FALSE(Expect.Diagnostics.empty()) << "dead store not reported?";

  for (std::size_t I = 0; I < Expect.Diagnostics.size(); ++I) {
    const JsonValue &D = Diags->asArray()[I];
    const Diagnostic &E = Expect.Diagnostics[I];
    EXPECT_EQ(D.get("code")->asString(), E.Id);
    EXPECT_EQ(D.get("source")->asString(), "csdf");
    // 1-based SourceLoc to 0-based LSP line.
    const JsonValue *Start = D.get("range")->get("start");
    EXPECT_EQ(Start->get("line")->asInt(),
              static_cast<std::int64_t>(E.Loc.Line) - 1);
    EXPECT_EQ(D.get("message")->asString().rfind(E.Message, 0), 0u)
        << D.get("message")->asString();
  }
}

TEST(LspTest, DidChangeRepublishesAndCaches) {
  LspServer Server((LspOptions()));
  std::vector<std::string> Out;
  Server.handleMessage(didOpen("file:///a.mpl", DeadStore), Out);

  // Clean revision: diagnostics go away.
  Out.clear();
  ASSERT_TRUE(Server.handleMessage(
      didChange("file:///a.mpl", "x = 1;\nprint x;\n"), Out));
  JsonValue Params = publishedParams(Out, "file:///a.mpl");
  EXPECT_TRUE(Params.get("diagnostics")->asArray().empty());

  // Unchanged revision: answered from the incremental cache.
  std::uint64_t HitsBefore = Server.analyzer().incrementalStats().CacheHits;
  Out.clear();
  ASSERT_TRUE(Server.handleMessage(
      didChange("file:///a.mpl", "x = 1;\nprint x;\n"), Out));
  publishedParams(Out, "file:///a.mpl");
  EXPECT_EQ(Server.analyzer().incrementalStats().CacheHits, HitsBefore + 1);
}

TEST(LspTest, DidCloseClearsDiagnostics) {
  LspServer Server((LspOptions()));
  std::vector<std::string> Out;
  Server.handleMessage(didOpen("file:///b.mpl", DeadStore), Out);

  Out.clear();
  ASSERT_TRUE(Server.handleMessage(
      msg("\"method\":\"textDocument/didClose\",\"params\":{"
          "\"textDocument\":{\"uri\":\"file:///b.mpl\"}}"),
      Out));
  JsonValue Params = publishedParams(Out, "file:///b.mpl");
  EXPECT_TRUE(Params.get("diagnostics")->asArray().empty());
}

TEST(LspTest, UnknownRequestIsMethodNotFound) {
  LspServer Server((LspOptions()));
  std::vector<std::string> Out;
  ASSERT_TRUE(Server.handleMessage(
      msg("\"id\":7,\"method\":\"workspace/symbol\",\"params\":{}"), Out));
  ASSERT_EQ(Out.size(), 1u);
  JsonValue V = parsed(Out[0]);
  EXPECT_EQ(V.get("id")->asInt(), 7);
  ASSERT_TRUE(V.get("error"));
  EXPECT_EQ(V.get("error")->get("code")->asInt(), -32601);

  // Unknown notifications (no id) are ignored, per the spec.
  Out.clear();
  ASSERT_TRUE(Server.handleMessage(
      msg("\"method\":\"$/setTrace\",\"params\":{}"), Out));
  EXPECT_TRUE(Out.empty());
}

TEST(LspTest, ShutdownThenExitIsClean) {
  LspServer Server((LspOptions()));
  std::vector<std::string> Out;
  ASSERT_TRUE(Server.handleMessage(
      msg("\"id\":2,\"method\":\"shutdown\""), Out));
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_TRUE(parsed(Out[0]).get("result")->isNull());

  Out.clear();
  EXPECT_FALSE(Server.handleMessage(msg("\"method\":\"exit\""), Out));
  EXPECT_EQ(Server.exitCode(), 0);
}

TEST(LspTest, ExitWithoutShutdownIsError) {
  LspServer Server((LspOptions()));
  std::vector<std::string> Out;
  EXPECT_FALSE(Server.handleMessage(msg("\"method\":\"exit\""), Out));
  EXPECT_EQ(Server.exitCode(), 1);
}

} // namespace
