//===- tests/driver/RouterTest.cpp ----------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// RouterServer against stub unix-socket shards: deterministic placement,
// verbatim forwarding with the shard member appended, failover past dead
// and overloaded shards, the retryable "unavailable" terminal error,
// per-tenant admission shedding, and locally answered stats/shutdown.
//
//===----------------------------------------------------------------------===//

#include "driver/Router.h"

#include "support/Json.h"

#include "gtest/gtest.h"

#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <poll.h>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace csdf;

namespace {

/// A stub shard: accepts connections on a unix socket and answers each
/// request line per its mode, recording every line it received. Stands in
/// for a serve daemon so the router's placement/failover logic is tested
/// without booting real analyzers.
class StubShard {
public:
  enum class Mode {
    Ok,         ///< well-formed success response
    Overloaded, ///< structured retryable shed
    Drop,       ///< read the line, close without answering (transport
                ///< failure from the router's side)
  };

  StubShard(std::string Path, Mode M, unsigned DelayMs = 0)
      : Path(std::move(Path)), M(M), DelayMs(DelayMs) {}

  ~StubShard() { stop(); }

  bool start() {
    sockaddr_un Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sun_family = AF_UNIX;
    if (Path.size() >= sizeof(Addr.sun_path))
      return false;
    std::memcpy(Addr.sun_path, Path.c_str(), Path.size());
    ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (ListenFd < 0)
      return false;
    ::unlink(Path.c_str());
    if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
               sizeof(Addr)) != 0 ||
        ::listen(ListenFd, 16) != 0) {
      ::close(ListenFd);
      ListenFd = -1;
      return false;
    }
    Running.store(true);
    Acceptor = std::thread([this] { acceptLoop(); });
    return true;
  }

  void stop() {
    if (!Running.exchange(false))
      return;
    if (Acceptor.joinable())
      Acceptor.join();
    if (ListenFd >= 0)
      ::close(ListenFd);
    ListenFd = -1;
    ::unlink(Path.c_str());
  }

  std::vector<std::string> received() const {
    std::lock_guard<std::mutex> L(Mu);
    return Received;
  }

  const std::string Path;

private:
  void acceptLoop() {
    while (Running.load()) {
      pollfd P{ListenFd, POLLIN, 0};
      int R = ::poll(&P, 1, 50);
      if (R <= 0)
        continue;
      int Conn = ::accept(ListenFd, nullptr, nullptr);
      if (Conn < 0)
        continue;
      serveOne(Conn);
      ::close(Conn);
    }
  }

  void serveOne(int Fd) {
    std::string Buf;
    char Chunk[4096];
    size_t Nl;
    while ((Nl = Buf.find('\n')) == std::string::npos) {
      ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
      if (N <= 0)
        return; // probe connect (no bytes) or peer gave up
      Buf.append(Chunk, static_cast<size_t>(N));
    }
    std::string Line = Buf.substr(0, Nl);
    {
      std::lock_guard<std::mutex> L(Mu);
      Received.push_back(Line);
    }
    if (DelayMs)
      std::this_thread::sleep_for(std::chrono::milliseconds(DelayMs));
    std::string Resp;
    switch (M) {
    case Mode::Ok:
      Resp = "{\"id\":1,\"proto\":1,\"tool_version\":\"test\",\"ok\":true,"
             "\"result\":{\"verdict\":\"no-mismatch\"},\"wall_us\":7}";
      break;
    case Mode::Overloaded:
      Resp = api::wireOverloaded(25);
      break;
    case Mode::Drop:
      return;
    }
    Resp += "\n";
    size_t Off = 0;
    while (Off < Resp.size()) {
      ssize_t N = ::send(Fd, Resp.data() + Off, Resp.size() - Off,
                         MSG_NOSIGNAL);
      if (N <= 0)
        return;
      Off += static_cast<size_t>(N);
    }
  }

  const Mode M;
  const unsigned DelayMs;
  int ListenFd = -1;
  std::atomic<bool> Running{false};
  std::thread Acceptor;
  mutable std::mutex Mu;
  std::vector<std::string> Received;
};

std::string shardPath(const char *Tag) {
  return "/tmp/csdf-rt-" + std::to_string(::getpid()) + "-" + Tag +
         ".sock";
}

/// A request line whose routing key the ring maps to \p WantOwner (found
/// by varying the source), so tests can aim requests at a chosen shard.
std::string requestOwnedBy(const RouterOptions &Opts,
                           const std::string &WantOwner,
                           const std::string &Tenant = "") {
  HashRing Ring(Opts.Replicas);
  for (const std::string &B : Opts.Backends)
    Ring.addNode(B);
  for (int I = 0;; ++I) {
    api::WireRequest Req;
    Req.IdJson = "1";
    Req.Type = "analyze";
    Req.Path = "t.mpl";
    Req.Source = "proc p in 0..np-1 { } # v" + std::to_string(I);
    Req.Tenant = Tenant;
    if (Ring.owner(api::wireRoutingKey(Req)) == WantOwner)
      return api::wireRequestJson(Req, /*IncludeOptions=*/false);
  }
}

JsonValue parsed(const std::string &Line) {
  JsonValue V;
  std::string Error;
  EXPECT_TRUE(parseJson(Line, V, Error)) << Line;
  return V;
}

RouterOptions optionsFor(const std::vector<std::string> &Backends) {
  RouterOptions Opts;
  Opts.Backends = Backends;
  Opts.SocketPath = shardPath("router"); // unused: handleLine is direct
  Opts.HealthIntervalMs = 0;
  return Opts;
}

TEST(RouterTest, ForwardsVerbatimAndAppendsShard) {
  StubShard Shard(shardPath("fwd"), StubShard::Mode::Ok);
  ASSERT_TRUE(Shard.start());
  RouterOptions Opts = optionsFor({Shard.Path});
  RouterServer Router(Opts);

  std::string Line = requestOwnedBy(Opts, Shard.Path);
  bool Shutdown = false;
  std::string Resp = Router.handleLine(Line, Shutdown);
  EXPECT_FALSE(Shutdown);

  // The shard saw the exact request bytes — placement adds routing, never
  // a second spelling of the request.
  std::vector<std::string> Got = Shard.received();
  ASSERT_EQ(Got.size(), 1u);
  EXPECT_EQ(Got[0], Line);

  JsonValue V = parsed(Resp);
  EXPECT_TRUE(V.get("ok")->asBool());
  ASSERT_NE(V.get("shard"), nullptr);
  EXPECT_EQ(V.get("shard")->asString(), Shard.Path);
  // The shard's own members survive the append untouched.
  EXPECT_EQ(V.get("wall_us")->asInt(), 7);

  RouterStats Stats = Router.statsSnapshot();
  EXPECT_EQ(Stats.Requests, 1u);
  EXPECT_EQ(Stats.Forwarded, 1u);
  EXPECT_EQ(Stats.Failovers, 0u);
}

TEST(RouterTest, PlacementIsDeterministicAcrossRepeats) {
  StubShard A(shardPath("da"), StubShard::Mode::Ok);
  StubShard B(shardPath("db"), StubShard::Mode::Ok);
  StubShard C(shardPath("dc"), StubShard::Mode::Ok);
  ASSERT_TRUE(A.start() && B.start() && C.start());
  RouterOptions Opts = optionsFor({A.Path, B.Path, C.Path});
  RouterServer Router(Opts);

  std::string Line = requestOwnedBy(Opts, B.Path);
  bool Shutdown = false;
  for (int I = 0; I < 5; ++I) {
    JsonValue V = parsed(Router.handleLine(Line, Shutdown));
    EXPECT_EQ(V.get("shard")->asString(), B.Path);
  }
  // Every repeat hit the same shard: the one whose cache is warm.
  EXPECT_EQ(B.received().size(), 5u);
  EXPECT_TRUE(A.received().empty());
  EXPECT_TRUE(C.received().empty());
}

TEST(RouterTest, FailsOverPastADeadShard) {
  StubShard Alive(shardPath("fa"), StubShard::Mode::Ok);
  ASSERT_TRUE(Alive.start());
  std::string DeadPath = shardPath("fdead"); // no listener: kill -9'd
  RouterOptions Opts = optionsFor({Alive.Path, DeadPath});
  RouterServer Router(Opts);

  std::string Line = requestOwnedBy(Opts, DeadPath);
  bool Shutdown = false;
  JsonValue V = parsed(Router.handleLine(Line, Shutdown));

  EXPECT_TRUE(V.get("ok")->asBool());
  EXPECT_EQ(V.get("shard")->asString(), Alive.Path);
  RouterStats Stats = Router.statsSnapshot();
  EXPECT_EQ(Stats.Forwarded, 1u);
  EXPECT_EQ(Stats.Failovers, 1u);
  // The dead shard was demoted on the failed connect, so the next request
  // owned by it goes straight to the successor — no repeat connect cost.
  EXPECT_EQ(Router.healthyCount(), 1u);
}

TEST(RouterTest, FailsOverPastAConnectionDrop) {
  StubShard Dropper(shardPath("ga"), StubShard::Mode::Drop);
  StubShard Alive(shardPath("gb"), StubShard::Mode::Ok);
  ASSERT_TRUE(Dropper.start() && Alive.start());
  RouterOptions Opts = optionsFor({Dropper.Path, Alive.Path});
  RouterServer Router(Opts);

  std::string Line = requestOwnedBy(Opts, Dropper.Path);
  bool Shutdown = false;
  JsonValue V = parsed(Router.handleLine(Line, Shutdown));
  EXPECT_TRUE(V.get("ok")->asBool());
  EXPECT_EQ(V.get("shard")->asString(), Alive.Path);
  EXPECT_EQ(Router.statsSnapshot().Failovers, 1u);
}

TEST(RouterTest, FailsOverPastAnOverloadedShard) {
  StubShard Shedding(shardPath("oa"), StubShard::Mode::Overloaded);
  StubShard Alive(shardPath("ob"), StubShard::Mode::Ok);
  ASSERT_TRUE(Shedding.start() && Alive.start());
  RouterOptions Opts = optionsFor({Shedding.Path, Alive.Path});
  RouterServer Router(Opts);

  std::string Line = requestOwnedBy(Opts, Shedding.Path);
  bool Shutdown = false;
  JsonValue V = parsed(Router.handleLine(Line, Shutdown));

  // The client never saw the shed: the successor had capacity.
  EXPECT_TRUE(V.get("ok")->asBool());
  EXPECT_EQ(V.get("shard")->asString(), Alive.Path);
  EXPECT_EQ(Shedding.received().size(), 1u);
  EXPECT_EQ(Router.statsSnapshot().Failovers, 1u);
  // An overload is load, not death: the shard stays routable.
  EXPECT_EQ(Router.healthyCount(), 2u);
}

TEST(RouterTest, AllShardsDownIsRetryableUnavailable) {
  RouterOptions Opts =
      optionsFor({shardPath("na"), shardPath("nb")}); // no listeners
  RouterServer Router(Opts);

  std::string Line = requestOwnedBy(Opts, Opts.Backends[0]);
  bool Shutdown = false;
  JsonValue V = parsed(Router.handleLine(Line, Shutdown));

  EXPECT_FALSE(V.get("ok")->asBool());
  EXPECT_EQ(V.get("code")->asString(), "unavailable");
  // Retryable with a hint: the fleet may just be restarting.
  EXPECT_TRUE(V.get("retryable")->asBool());
  EXPECT_GT(V.get("retry_after_ms")->asInt(), 0);
  EXPECT_EQ(V.get("id")->asInt(), 1); // id echoed even on total failure
  EXPECT_EQ(Router.statsSnapshot().Unavailable, 1u);
}

TEST(RouterTest, TenantOverQuotaIsShedWhileOthersProceed) {
  StubShard Slow(shardPath("ta"), StubShard::Mode::Ok, /*DelayMs=*/400);
  ASSERT_TRUE(Slow.start());
  RouterOptions Opts = optionsFor({Slow.Path});
  Opts.TenantMaxInflight = 1;
  Opts.TenantQueueDepth = 0;
  RouterServer Router(Opts);

  std::string Noisy = requestOwnedBy(Opts, Slow.Path, "ci");

  // Occupy tenant ci's only slot with a slow request...
  std::thread First([&Router, &Noisy] {
    bool Shutdown = false;
    JsonValue V = parsed(Router.handleLine(Noisy, Shutdown));
    EXPECT_TRUE(V.get("ok")->asBool());
  });
  // ...give it time to be admitted and block in the stub...
  while (Slow.received().empty())
    std::this_thread::sleep_for(std::chrono::milliseconds(10));

  // ...then the same tenant is shed with a structured overload naming it,
  bool Shutdown = false;
  JsonValue Shed = parsed(Router.handleLine(Noisy, Shutdown));
  EXPECT_FALSE(Shed.get("ok")->asBool());
  EXPECT_EQ(Shed.get("code")->asString(), "overloaded");
  EXPECT_TRUE(Shed.get("retryable")->asBool());
  EXPECT_NE(Shed.get("error")->asString().find("'ci'"), std::string::npos);

  // ...while a different tenant's identical work proceeds (it waits only
  // on the stub, which serves connections sequentially).
  std::string Quiet = requestOwnedBy(Opts, Slow.Path, "editor");
  JsonValue Ok = parsed(Router.handleLine(Quiet, Shutdown));
  EXPECT_TRUE(Ok.get("ok")->asBool());

  First.join();
  EXPECT_EQ(Router.statsSnapshot().TenantSheds, 1u);
}

TEST(RouterTest, StatsAnsweredLocally) {
  RouterOptions Opts = optionsFor({shardPath("sa"), shardPath("sb")});
  RouterServer Router(Opts);
  Router.setHealthy(Opts.Backends[1], false);

  bool Shutdown = false;
  JsonValue V =
      parsed(Router.handleLine("{\"id\":3,\"type\":\"stats\"}", Shutdown));
  EXPECT_FALSE(Shutdown);
  EXPECT_TRUE(V.get("ok")->asBool());
  EXPECT_EQ(V.get("id")->asInt(), 3);
  const JsonValue *Stats = V.get("stats");
  ASSERT_NE(Stats, nullptr);
  EXPECT_EQ(Stats->get("backends")->asInt(), 2);
  EXPECT_EQ(Stats->get("backends_healthy")->asInt(), 1);
  EXPECT_EQ(Stats->get("proto")->asInt(), api::WireProtoVersion);
}

TEST(RouterTest, ShutdownAnsweredLocally) {
  RouterOptions Opts = optionsFor({shardPath("za")});
  RouterServer Router(Opts);
  bool Shutdown = false;
  JsonValue V =
      parsed(Router.handleLine("{\"type\":\"shutdown\"}", Shutdown));
  EXPECT_TRUE(Shutdown);
  EXPECT_TRUE(V.get("ok")->asBool());
  EXPECT_TRUE(V.get("shutting_down")->asBool());
}

TEST(RouterTest, RejectsGarbageAndUnknownTypesLikeAShard) {
  RouterOptions Opts = optionsFor({shardPath("ea")});
  RouterServer Router(Opts);
  bool Shutdown = false;

  JsonValue Garbage = parsed(Router.handleLine("not json", Shutdown));
  EXPECT_EQ(Garbage.get("code")->asString(), "parse-error");
  EXPECT_FALSE(Garbage.get("retryable")->asBool());

  JsonValue Unknown = parsed(
      Router.handleLine("{\"type\":\"frobnicate\"}", Shutdown));
  EXPECT_EQ(Unknown.get("code")->asString(), "invalid-request");

  JsonValue Mismatch = parsed(
      Router.handleLine("{\"proto\":9,\"type\":\"analyze\"}", Shutdown));
  EXPECT_EQ(Mismatch.get("code")->asString(), "proto-mismatch");

  EXPECT_EQ(Router.statsSnapshot().Errors, 3u);
}

} // namespace
