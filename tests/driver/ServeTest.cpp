//===- tests/driver/ServeTest.cpp - analysis daemon tests ------------------===//
//
// The `csdf serve` request processor: golden equivalence (a serve response's
// "result" is byte-identical to what one-shot `csdf analyze --format json`
// prints for the same input, over the whole examples/mpl corpus, including
// buggy and budget-tripped programs), the content-addressed LRU cache
// (hits return identical bytes, capacity evicts, options key separately),
// stats accounting, and loud rejection of malformed requests.
//
//===----------------------------------------------------------------------===//

#include "driver/Serve.h"

#include "api/Csdf.h"
#include "support/Fault.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>

#include <unistd.h>

using namespace csdf;
namespace fs = std::filesystem;

namespace {

/// Feeds one request line, expecting no shutdown.
std::string request(ServeServer &Server, const std::string &Line) {
  bool Shutdown = false;
  std::string Resp = Server.handleLine(Line, Shutdown);
  EXPECT_FALSE(Shutdown) << Line;
  return Resp;
}

/// Parses a response line and returns the value (asserting well-formed).
JsonValue parsed(const std::string &Resp) {
  JsonValue V;
  std::string Error;
  EXPECT_TRUE(parseJson(Resp, V, Error)) << Resp << ": " << Error;
  return V;
}

/// The "result" member of a response, re-serialized from the raw line so
/// byte-level comparisons see exactly what the daemon sent. Extracted
/// textually: "result" is the last member before ",\"wall_us\":N}".
std::string rawResult(const std::string &Resp) {
  size_t Start = Resp.find("\"result\":");
  EXPECT_NE(Start, std::string::npos) << Resp;
  Start += std::string("\"result\":").size();
  size_t End = Resp.rfind(",\"wall_us\":");
  if (End == std::string::npos || End < Start)
    End = Resp.size() - 1; // cached payloads in tests without wall_us
  return Resp.substr(Start, End - Start);
}

std::string normalizeWallMs(std::string S) {
  return std::regex_replace(S, std::regex("\"wall_ms\": \\d+"),
                            "\"wall_ms\": 0");
}

std::string jsonQuote(const std::string &S) {
  std::string Out = "\"";
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if (C == '\n') {
      Out += "\\n";
      continue;
    }
    Out += C;
  }
  Out += '"';
  return Out;
}

//===--------------------------------------------------------------------===//
// Golden equivalence with one-shot analyze
//===--------------------------------------------------------------------===//

TEST(ServeTest, ResultsMatchOneShotAnalyzeOverExampleCorpus) {
  // The daemon is a cache in front of the CLI, never a different
  // analyzer: for every example program (clean, buggy, degraded), the
  // "result" object must match `csdf analyze --format json` byte for
  // byte, modulo the wall_ms measurement.
  ServeOptions SOpts;
  ServeServer Server(SOpts);

  std::vector<std::string> Files;
  for (const auto &Entry : fs::directory_iterator(CSDF_EXAMPLES_DIR))
    if (Entry.path().extension() == ".mpl")
      Files.push_back(Entry.path().string());
  std::sort(Files.begin(), Files.end());
  ASSERT_GE(Files.size(), 5u);

  for (const std::string &File : Files) {
    std::string Resp = request(
        Server, "{\"id\": 1, \"type\": \"analyze\", \"path\": " +
                    jsonQuote(File) + "}");
    JsonValue V = parsed(Resp);
    EXPECT_TRUE(V.get("ok")->asBool()) << Resp;
    EXPECT_FALSE(V.get("cached")->asBool()) << File;

    api::Analyzer OneShot; // cold, like the CLI
    api::AnalyzeRequest Req;
    Req.Path = File;
    api::AnalyzeResponse R = OneShot.analyze(Req);
    EXPECT_EQ(normalizeWallMs(rawResult(Resp)),
              normalizeWallMs(api::verdictJson(File, R)))
        << File;
  }
}

TEST(ServeTest, BudgetTrippedRequestsMatchOneShotAndCountTrips) {
  // A state-budget trip has a deterministic reason string, so even the
  // degraded verdict must match the one-shot run byte for byte — and bump
  // the budget_trips counter.
  ServeOptions SOpts;
  ServeServer Server(SOpts);
  std::string File = std::string(CSDF_EXAMPLES_DIR) + "/stress_phases.mpl";
  std::string Line = "{\"id\": 7, \"type\": \"analyze\", \"path\": " +
                     jsonQuote(File) +
                     ", \"options\": {\"max_states\": 2}}";
  std::string Resp = request(Server, Line);

  api::Analyzer OneShot;
  api::AnalyzeRequest Req;
  Req.Path = File;
  Req.Options.MaxStates = 2;
  api::AnalyzeResponse R = OneShot.analyze(Req);
  ASSERT_TRUE(R.degraded());
  EXPECT_EQ(normalizeWallMs(rawResult(Resp)),
            normalizeWallMs(api::verdictJson(File, R)));
  EXPECT_EQ(Server.stats().BudgetTrips, 1u);

  // The tripped result is a legitimate, cacheable property of (source,
  // options): a repeat is a hit with identical bytes.
  std::string Again = request(Server, Line);
  EXPECT_TRUE(parsed(Again).get("cached")->asBool());
  EXPECT_EQ(rawResult(Again), rawResult(Resp));
}

//===--------------------------------------------------------------------===//
// Cache behaviour
//===--------------------------------------------------------------------===//

TEST(ServeTest, CacheHitsReturnIdenticalBytes) {
  ServeOptions SOpts;
  ServeServer Server(SOpts);
  const std::string Line =
      "{\"id\": 1, \"type\": \"analyze\", \"path\": \"buf.mpl\", "
      "\"source\": \"x = 1;\\nprint x;\\n\"}";

  std::string First = request(Server, Line);
  EXPECT_FALSE(parsed(First).get("cached")->asBool());
  std::string Second = request(Server, Line);
  EXPECT_TRUE(parsed(Second).get("cached")->asBool());
  EXPECT_EQ(rawResult(Second), rawResult(First)); // wall_ms included

  EXPECT_EQ(Server.stats().Hits, 1u);
  EXPECT_EQ(Server.stats().Misses, 1u);
  EXPECT_EQ(Server.cacheEntries(), 1u);

  // Different options (or source) are different cache keys.
  std::string Other = request(
      Server, "{\"id\": 2, \"type\": \"analyze\", \"path\": \"buf.mpl\", "
              "\"source\": \"x = 1;\\nprint x;\\n\", "
              "\"options\": {\"client\": \"linear\"}}");
  EXPECT_FALSE(parsed(Other).get("cached")->asBool());
  EXPECT_EQ(Server.cacheEntries(), 2u);
}

TEST(ServeTest, DetectorTogglesAreCacheKeysNotStaleHits) {
  // Regression: toggling a detector must never replay a cached result that
  // was computed with the old setting. The wildcard-race program reports a
  // match-nondet bug by default; with check_match_nondet off the same
  // (path, source) pair must be a cache miss and carry no such bug.
  ServeOptions SOpts;
  ServeServer Server(SOpts);
  const std::string Source =
      "if id == 0 then\\n  recv x <- any;\\n  recv y <- any;\\n"
      "  print x + y;\\nelse\\n  if id < 3 then\\n    send id -> 0;\\n"
      "  end\\nend\\n";
  const std::string Common =
      "\"type\": \"lint\", \"path\": \"race.mpl\", \"source\": \"" +
      Source + "\"";

  std::string On = request(Server, "{" + Common + "}");
  EXPECT_FALSE(parsed(On).get("cached")->asBool());
  EXPECT_NE(rawResult(On).find("match-nondet"), std::string::npos) << On;

  std::string Off = request(
      Server,
      "{" + Common + ", \"options\": {\"check_match_nondet\": false}}");
  EXPECT_FALSE(parsed(Off).get("cached")->asBool())
      << "detector toggle must miss the cache, not replay the old result";
  EXPECT_EQ(rawResult(Off).find("match-nondet"), std::string::npos) << Off;
  EXPECT_EQ(Server.cacheEntries(), 2u);

  // Both variants stay independently cached and replay their own bytes.
  std::string OnAgain = request(Server, "{" + Common + "}");
  EXPECT_TRUE(parsed(OnAgain).get("cached")->asBool());
  EXPECT_EQ(rawResult(OnAgain), rawResult(On));
  std::string OffAgain = request(
      Server,
      "{" + Common + ", \"options\": {\"check_match_nondet\": false}}");
  EXPECT_TRUE(parsed(OffAgain).get("cached")->asBool());
  EXPECT_EQ(rawResult(OffAgain), rawResult(Off));
}

TEST(ServeTest, LruEvictsAtCapacity) {
  ServeOptions SOpts;
  SOpts.CacheCapacity = 2;
  ServeServer Server(SOpts);
  auto Analyze = [&](const std::string &Name) {
    return request(Server,
                   "{\"type\": \"analyze\", \"path\": \"" + Name +
                       "\", \"source\": \"x = 1;\\nprint x;\\n\"}");
  };

  Analyze("a.mpl");
  Analyze("b.mpl");
  EXPECT_EQ(Server.cacheEntries(), 2u);
  EXPECT_EQ(Server.stats().Evictions, 0u);

  // Touch a (now MRU), insert c: b is the LRU victim.
  EXPECT_TRUE(parsed(Analyze("a.mpl")).get("cached")->asBool());
  Analyze("c.mpl");
  EXPECT_EQ(Server.cacheEntries(), 2u);
  EXPECT_EQ(Server.stats().Evictions, 1u);
  EXPECT_TRUE(parsed(Analyze("a.mpl")).get("cached")->asBool());
  EXPECT_FALSE(parsed(Analyze("b.mpl")).get("cached")->asBool()); // evicted

  // Capacity 0 disables caching entirely.
  ServeOptions Off;
  Off.CacheCapacity = 0;
  ServeServer NoCache(Off);
  bool Shutdown = false;
  NoCache.handleLine("{\"type\": \"analyze\", \"path\": \"a.mpl\", "
                     "\"source\": \"x = 1;\\nprint x;\\n\"}",
                     Shutdown);
  std::string Resp = NoCache.handleLine(
      "{\"type\": \"analyze\", \"path\": \"a.mpl\", "
      "\"source\": \"x = 1;\\nprint x;\\n\"}",
      Shutdown);
  EXPECT_FALSE(parsed(Resp).get("cached")->asBool());
  EXPECT_EQ(NoCache.cacheEntries(), 0u);
}

TEST(ServeTest, UnreadableFilesAreNotCached) {
  // A missing file yields a usage-error verdict but is never cached: the
  // same request must succeed once the file appears.
  ServeOptions SOpts;
  ServeServer Server(SOpts);
  fs::path P = fs::temp_directory_path() /
               ("csdf-serve-test-" + std::to_string(::getpid()) + ".mpl");
  fs::remove(P);

  std::string Line = "{\"type\": \"analyze\", \"path\": " +
                     jsonQuote(P.string()) + "}";
  std::string Resp = request(Server, Line);
  JsonValue V = parsed(Resp);
  EXPECT_TRUE(V.get("ok")->asBool());
  EXPECT_NE(rawResult(Resp).find("usage-error"), std::string::npos);
  EXPECT_EQ(Server.cacheEntries(), 0u);

  std::ofstream(P) << "x = 1;\nprint x;\n";
  Resp = request(Server, Line);
  EXPECT_NE(rawResult(Resp).find("\"verdict\": \"complete\""),
            std::string::npos);
  fs::remove(P);
}

//===--------------------------------------------------------------------===//
// Lint requests
//===--------------------------------------------------------------------===//

TEST(ServeTest, LintRequestsCarryDiagnosticsAndCache) {
  ServeOptions SOpts;
  ServeServer Server(SOpts);
  const std::string Line =
      "{\"type\": \"lint\", \"path\": \"l.mpl\", "
      "\"source\": \"x = 1;\\nx = 2;\\nprint x;\\n\"}";

  std::string Resp = request(Server, Line);
  JsonValue V = parsed(Resp);
  EXPECT_TRUE(V.get("ok")->asBool());
  const JsonValue *Result = V.get("result");
  ASSERT_NE(Result, nullptr);
  EXPECT_EQ(Result->get("exit_code")->asInt(), 1);
  ASSERT_TRUE(Result->get("diagnostics")->isArray());
  bool SawDeadStore = false;
  for (const JsonValue &D : Result->get("diagnostics")->asArray())
    if (D.get("rule") && D.get("rule")->asString() == "csdf.dead-store")
      SawDeadStore = true;
  EXPECT_TRUE(SawDeadStore) << Resp;

  EXPECT_TRUE(parsed(request(Server, Line)).get("cached")->asBool());

  // Lint policy is part of the key: disabling the pass is a different
  // request with a different result.
  std::string Disabled = request(
      Server, "{\"type\": \"lint\", \"path\": \"l.mpl\", "
              "\"source\": \"x = 1;\\nx = 2;\\nprint x;\\n\", "
              "\"disable\": [\"dead-store\"]}");
  JsonValue DV = parsed(Disabled);
  EXPECT_FALSE(DV.get("cached")->asBool());
  EXPECT_EQ(DV.get("result")->get("exit_code")->asInt(), 0);
}

//===--------------------------------------------------------------------===//
// Disk-store tier: restart warmness, quarantine, stats
//===--------------------------------------------------------------------===//

/// A scoped store directory + fault disarm for the disk-tier tests.
struct ScopedStoreDir {
  fs::path Dir;
  ScopedStoreDir() {
    Dir = fs::temp_directory_path() /
          ("csdf-serve-store-" + std::to_string(::getpid()) + "-" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(Dir);
  }
  ~ScopedStoreDir() {
    fs::remove_all(Dir);
    std::string Error;
    FaultInjector::global().configure("", Error);
  }
};

TEST(ServeTest, DiskTierServesByteIdenticalResultsAcrossRestart) {
  // The point of --store-dir: a fresh daemon (fresh memory LRU, fresh
  // analyzer) over the same store directory answers from disk with the
  // exact bytes the first daemon computed.
  ScopedStoreDir S;
  ServeOptions SOpts;
  SOpts.StoreDir = S.Dir.string();

  const std::string LineA =
      "{\"type\": \"analyze\", \"path\": \"a.mpl\", "
      "\"source\": \"x = 1;\\nprint x;\\n\"}";
  const std::string LineB =
      "{\"type\": \"lint\", \"path\": \"b.mpl\", "
      "\"source\": \"x = 1;\\nx = 2;\\nprint x;\\n\"}";

  std::string FirstA, FirstB;
  {
    ServeServer Server(SOpts);
    ASSERT_TRUE(Server.storeError().empty()) << Server.storeError();
    FirstA = request(Server, LineA);
    FirstB = request(Server, LineB);
    EXPECT_FALSE(parsed(FirstA).get("cached")->asBool());
    EXPECT_EQ(Server.stats().DiskWrites, 2u);
  } // "kill": the daemon and its memory cache are gone

  ServeServer Restarted(SOpts);
  std::string SecondA = request(Restarted, LineA);
  std::string SecondB = request(Restarted, LineB);
  EXPECT_TRUE(parsed(SecondA).get("cached")->asBool());
  EXPECT_EQ(parsed(SecondA).get("tier")->asString(), "disk");
  EXPECT_EQ(rawResult(SecondA), rawResult(FirstA));
  EXPECT_EQ(rawResult(SecondB), rawResult(FirstB));
  EXPECT_EQ(Restarted.stats().DiskHits, 2u);
  EXPECT_EQ(Restarted.stats().Misses, 0u); // no re-analysis

  // The disk hit backfilled the memory tier: a repeat is a memory hit.
  std::string ThirdA = request(Restarted, LineA);
  EXPECT_EQ(parsed(ThirdA).get("tier")->asString(), "memory");
  EXPECT_EQ(rawResult(ThirdA), rawResult(FirstA));
}

TEST(ServeTest, CorruptedStoreEntryIsQuarantinedAndReanalyzed) {
  ScopedStoreDir S;
  ServeOptions SOpts;
  SOpts.StoreDir = S.Dir.string();
  const std::string Line =
      "{\"type\": \"analyze\", \"path\": \"c.mpl\", "
      "\"source\": \"x = 3;\\nprint x;\\n\"}";

  std::string First;
  {
    ServeServer Server(SOpts);
    First = request(Server, Line);
  }

  // Corrupt the one record on disk (bit flip in the payload).
  fs::path Rec;
  for (const auto &E : fs::directory_iterator(S.Dir))
    if (E.path().extension() == ".rec")
      Rec = E.path();
  ASSERT_FALSE(Rec.empty());
  {
    std::ifstream In(Rec, std::ios::binary);
    std::string Bytes((std::istreambuf_iterator<char>(In)),
                      std::istreambuf_iterator<char>());
    Bytes[Bytes.size() - 2] ^= 0x01;
    std::ofstream(Rec, std::ios::binary | std::ios::trunc) << Bytes;
  }

  ServeServer Restarted(SOpts);
  std::string Second = request(Restarted, Line);
  // Never served: the corrupt record was quarantined and the request
  // re-analyzed — landing on the same (deterministic) result bytes.
  EXPECT_FALSE(parsed(Second).get("cached")->asBool());
  EXPECT_EQ(rawResult(Second), rawResult(First));
  EXPECT_EQ(Restarted.stats().DiskQuarantined, 1u);
  EXPECT_TRUE(fs::exists(S.Dir / "quarantine"));
  // The re-analysis re-populated the store: next restart hits again.
  ServeServer Third(SOpts);
  EXPECT_TRUE(parsed(request(Third, Line)).get("cached")->asBool());
}

TEST(ServeTest, StoreWriteFaultsDegradeToUncachedNeverFail) {
  // With every store write failing, the daemon still answers correctly —
  // it just stays cold on disk. Write failures are counted distinctly.
  ScopedStoreDir S;
  std::string Error;
  ASSERT_TRUE(FaultInjector::global().configure("store-write-fail", Error));
  ServeOptions SOpts;
  SOpts.StoreDir = S.Dir.string();
  ServeServer Server(SOpts);
  std::string Resp = request(Server,
                             "{\"type\": \"analyze\", \"path\": \"f.mpl\", "
                             "\"source\": \"x = 1;\\nprint x;\\n\"}");
  EXPECT_TRUE(parsed(Resp).get("ok")->asBool());
  EXPECT_EQ(Server.stats().DiskWriteFailures, 1u);
  EXPECT_EQ(Server.stats().DiskWrites, 0u);
  // Memory tier still works.
  EXPECT_TRUE(
      parsed(request(Server,
                     "{\"type\": \"analyze\", \"path\": \"f.mpl\", "
                     "\"source\": \"x = 1;\\nprint x;\\n\"}"))
          .get("cached")
          ->asBool());
}

TEST(ServeTest, StatsSeparateMemoryAndDiskTiers) {
  ScopedStoreDir S;
  ServeOptions SOpts;
  SOpts.StoreDir = S.Dir.string();
  const std::string Line =
      "{\"type\": \"analyze\", \"path\": \"t.mpl\", "
      "\"source\": \"x = 9;\\nprint x;\\n\"}";
  {
    ServeServer Server(SOpts);
    request(Server, Line); // miss -> analyze -> disk write
    request(Server, Line); // memory hit
    const ServeStats &St = Server.stats();
    EXPECT_TRUE(St.StoreEnabled);
    EXPECT_EQ(St.Hits, 1u);
    EXPECT_EQ(St.Misses, 1u);
    EXPECT_EQ(St.DiskHits, 0u);
    EXPECT_EQ(St.DiskMisses, 1u); // probed before the cold analyze
    EXPECT_EQ(St.DiskWrites, 1u);
    EXPECT_GT(St.StoreLiveBytes, 0u);
    EXPECT_EQ(St.StoreEntries, 1u);
  }
  ServeServer Restarted(SOpts);
  request(Restarted, Line); // disk hit
  request(Restarted, Line); // memory hit (backfilled)
  const ServeStats &St = Restarted.stats();
  EXPECT_EQ(St.DiskHits, 1u);
  EXPECT_EQ(St.Hits, 1u);
  EXPECT_EQ(St.Misses, 0u);

  // The JSON rendering carries the distinct counters.
  bool Shutdown = false;
  std::string StatsResp =
      Restarted.handleLine("{\"type\": \"stats\"}", Shutdown);
  JsonValue V = parsed(StatsResp);
  EXPECT_EQ(V.get("stats")->get("disk_hits")->asInt(), 1);
  EXPECT_EQ(V.get("stats")->get("store_enabled")->asBool(), true);
  EXPECT_EQ(V.get("stats")->get("disk_quarantined")->asInt(), 0);
}

TEST(ServeTest, StoreOpenFailureIsLoudNotSilent) {
  ScopedStoreDir S;
  std::string Error;
  ASSERT_TRUE(FaultInjector::global().configure("store-open-fail:1", Error));
  ServeOptions SOpts;
  SOpts.StoreDir = S.Dir.string();
  ServeServer Server(SOpts);
  EXPECT_FALSE(Server.storeError().empty());
}

//===--------------------------------------------------------------------===//
// Protocol robustness, stats, shutdown
//===--------------------------------------------------------------------===//

TEST(ServeTest, GarbageTruncatedAndOversizedRequestsKeepTheDaemonAlive) {
  // The satellite contract: a bad line — garbage, truncated JSON, or an
  // oversized request — yields a structured `parse-error` response and
  // the daemon keeps serving.
  ServeOptions SOpts;
  ServeServer Server(SOpts);

  auto ExpectParseError = [&](const std::string &Line) {
    std::string Resp = request(Server, Line);
    JsonValue V = parsed(Resp);
    EXPECT_FALSE(V.get("ok")->asBool()) << Resp;
    EXPECT_EQ(V.get("code")->asString(), "parse-error") << Resp;
    EXPECT_FALSE(V.get("retryable")->asBool()) << Resp;
  };

  ExpectParseError("garbage \x01\x02 not json");
  ExpectParseError("{\"type\": \"analyze\", \"path\""); // truncated line
  ExpectParseError("{\"type\": \"analyze\", \"source\": \"x = 1;");

  // An over-8MB request is rejected before the parser touches it.
  std::string Huge = "{\"type\": \"analyze\", \"source\": \"";
  Huge += std::string(9 * 1024 * 1024, 'x');
  Huge += "\"}";
  std::string Resp = request(Server, Huge);
  JsonValue V = parsed(Resp);
  EXPECT_EQ(V.get("code")->asString(), "parse-error");
  EXPECT_NE(V.get("error")->asString().find("exceeds"), std::string::npos);

  // Envelope-level rejections carry the invalid-request code.
  std::string Bad = request(Server, "{\"type\": \"frobnicate\"}");
  EXPECT_EQ(parsed(Bad).get("code")->asString(), "invalid-request");

  // And the daemon is still alive and serving.
  std::string Good = request(Server,
                             "{\"type\": \"analyze\", \"path\": \"a.mpl\", "
                             "\"source\": \"x = 1;\\nprint x;\\n\"}");
  EXPECT_TRUE(parsed(Good).get("ok")->asBool());
  EXPECT_EQ(Server.stats().Errors, 5u);
}

TEST(ServeTest, OverloadedResponseIsStructuredAndRetryable) {
  JsonValue V = parsed(overloadedResponse(50));
  EXPECT_FALSE(V.get("ok")->asBool());
  EXPECT_EQ(V.get("code")->asString(), "overloaded");
  EXPECT_TRUE(V.get("retryable")->asBool());
  EXPECT_EQ(V.get("retry_after_ms")->asInt(), 50);
}

TEST(ServeTest, MalformedAndUnknownRequestsAreRejectedLoudly) {
  ServeOptions SOpts;
  ServeServer Server(SOpts);
  auto ExpectError = [&](const std::string &Line, const char *Needle) {
    std::string Resp = request(Server, Line);
    JsonValue V = parsed(Resp);
    EXPECT_FALSE(V.get("ok")->asBool()) << Resp;
    EXPECT_NE(V.get("error")->asString().find(Needle), std::string::npos)
        << Resp;
  };
  ExpectError("not json", "malformed request");
  ExpectError("[1, 2]", "must be a JSON object");
  ExpectError("{\"id\": 9}", "no type");
  ExpectError("{\"type\": \"frobnicate\"}", "unknown request type");
  ExpectError("{\"type\": \"analyze\"}", "needs a path or a source");
  ExpectError("{\"type\": \"analyze\", \"path\": \"x\", \"bogus\": 1}",
              "unknown request field");
  ExpectError("{\"type\": \"analyze\", \"path\": \"x\", "
              "\"options\": {\"deadline\": 5}}",
              "unknown option");
  ExpectError("{\"type\": \"lint\", \"path\": \"x\", "
              "\"disable\": [\"no-such-pass\"]}",
              "unknown lint pass");
  ExpectError("{\"type\": \"lint\", \"path\": \"x\", "
              "\"min_severity\": \"loud\"}",
              "min_severity");
  EXPECT_EQ(Server.stats().Errors, 9u);

  // The id is echoed back even on errors, whatever JSON value it was.
  std::string Resp = request(Server, "{\"id\": \"abc\", \"x\": 1}");
  EXPECT_EQ(parsed(Resp).get("id")->asString(), "abc");
}

TEST(ServeTest, StatsReportCountsAndShutdownStopsTheLoop) {
  ServeOptions SOpts;
  ServeServer Server(SOpts);
  std::istringstream In(
      "{\"type\": \"analyze\", \"path\": \"a.mpl\", "
      "\"source\": \"x = 1;\\nprint x;\\n\"}\n"
      "\n" // blank lines are skipped
      "{\"type\": \"analyze\", \"path\": \"a.mpl\", "
      "\"source\": \"x = 1;\\nprint x;\\n\"}\n"
      "{\"id\": 42, \"type\": \"stats\"}\n"
      "{\"type\": \"shutdown\"}\n"
      "{\"type\": \"analyze\", \"path\": \"never-reached.mpl\"}\n");
  std::ostringstream Out;
  runServeLoop(Server, In, Out);

  std::vector<std::string> Lines;
  std::istringstream Resp(Out.str());
  for (std::string L; std::getline(Resp, L);)
    Lines.push_back(L);
  ASSERT_EQ(Lines.size(), 4u); // nothing after shutdown

  JsonValue Stats = parsed(Lines[2]);
  EXPECT_EQ(Stats.get("id")->asInt(), 42);
  const JsonValue *S = Stats.get("stats");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->get("requests")->asInt(), 3); // 2 analyze + stats itself
  EXPECT_EQ(S->get("analyze_requests")->asInt(), 2);
  EXPECT_EQ(S->get("hits")->asInt(), 1);
  EXPECT_EQ(S->get("misses")->asInt(), 1);
  EXPECT_DOUBLE_EQ(S->get("hit_rate")->asDouble(), 0.5);
  EXPECT_EQ(S->get("cache_entries")->asInt(), 1);
  EXPECT_GE(S->get("wall_us_total")->asInt(), 0);

  JsonValue Bye = parsed(Lines[3]);
  EXPECT_TRUE(Bye.get("ok")->asBool());
  EXPECT_TRUE(Bye.get("shutting_down")->asBool());
}

TEST(ServeTest, EveryNonErrorResponseCarriesWallTime) {
  ServeOptions SOpts;
  ServeServer Server(SOpts);
  std::string Resp = request(
      Server, "{\"type\": \"analyze\", \"path\": \"a.mpl\", "
              "\"source\": \"x = 1;\\nprint x;\\n\"}");
  JsonValue V = parsed(Resp);
  const JsonValue *Wall = V.get("wall_us");
  ASSERT_NE(Wall, nullptr);
  EXPECT_GE(Wall->asInt(), 0);
}

} // namespace
