//===- tests/numeric/CowInterningTest.cpp - COW / interning / memo tests -------===//
//
// Tests for the interned-variable, copy-on-write numeric core: SymbolTable
// id stability, CowDbm sharing and detach semantics, closure-memo hits,
// and property-style checks that removeVar / renameVars / equivalentForms
// preserve the closed form.
//
//===----------------------------------------------------------------------===//

#include "numeric/ConstraintGraph.h"

#include <gtest/gtest.h>

#include <thread>

using namespace csdf;

namespace {

//===----------------------------------------------------------------------===//
// SymbolTable
//===----------------------------------------------------------------------===//

TEST(SymbolTableTest, InternIsIdempotentAndDense) {
  SymbolTable T;
  VarId X = T.intern("x");
  VarId Y = T.intern("y");
  EXPECT_NE(X, Y);
  EXPECT_EQ(T.intern("x"), X);
  EXPECT_EQ(T.size(), 2u);
  EXPECT_EQ(T.name(X), "x");
  EXPECT_EQ(T.name(Y), "y");
}

TEST(SymbolTableTest, LookupDoesNotCreate) {
  SymbolTable T;
  EXPECT_FALSE(T.lookup("ghost").has_value());
  VarId Id = T.intern("ghost");
  ASSERT_TRUE(T.lookup("ghost").has_value());
  EXPECT_EQ(*T.lookup("ghost"), Id);
}

TEST(SymbolTableTest, IdsSurviveLaterInterning) {
  SymbolTable T;
  VarId First = T.intern("a");
  for (int I = 0; I < 100; ++I)
    T.intern("v" + std::to_string(I));
  EXPECT_EQ(T.intern("a"), First);
  EXPECT_EQ(T.name(First), "a");
}

TEST(SymbolTableTest, GraphsShareOneTable) {
  auto Syms = std::make_shared<SymbolTable>();
  ConstraintGraph A(DbmBackend::Dense, &StatsRegistry::global(), Syms);
  ConstraintGraph B(DbmBackend::Dense, &StatsRegistry::global(), Syms);
  A.ensureVar("x");
  B.ensureVar("x");
  ASSERT_EQ(A.varIds().size(), 1u);
  ASSERT_EQ(B.varIds().size(), 1u);
  EXPECT_EQ(A.varIds()[0], B.varIds()[0]);
  EXPECT_EQ(&A.symbols(), &B.symbols());
}

//===----------------------------------------------------------------------===//
// Copy-on-write sharing
//===----------------------------------------------------------------------===//

class CowTest : public ::testing::TestWithParam<DbmBackend> {
protected:
  ConstraintGraph make() {
    return ConstraintGraph(GetParam(), &Stats, Syms, Memo);
  }
  StatsRegistry Stats;
  SymbolTablePtr Syms = std::make_shared<SymbolTable>();
  ClosureMemoPtr Memo; // Off unless a test opts in.
};

TEST_P(CowTest, CopySharesUntilMutation) {
  ConstraintGraph A = make();
  A.addLE("x", "y", 3);
  ConstraintGraph B = A;
  EXPECT_TRUE(A.sharesStorage());
  EXPECT_TRUE(B.sharesStorage());
  EXPECT_EQ(Stats.counter("cg.cow.copies"), 1);
  EXPECT_EQ(Stats.counter("cg.cow.detaches"), 0);

  // Queries never detach.
  EXPECT_TRUE(B.provesLE(LinearExpr("x", 0), LinearExpr("y", 3)));
  EXPECT_TRUE(B.sharesStorage());

  // First mutation detaches exactly once.
  B.addLE("x", "y", 1);
  EXPECT_EQ(Stats.counter("cg.cow.detaches"), 1);
  EXPECT_FALSE(A.sharesStorage());
  EXPECT_FALSE(B.sharesStorage());
}

TEST_P(CowTest, MutatingCopyLeavesOriginalIntact) {
  ConstraintGraph A = make();
  A.addLE("x", "y", 5);
  ConstraintGraph B = A;
  B.addLE("x", "y", 1);
  B.addUpperBound("x", 0);
  // A still only knows x <= y + 5.
  EXPECT_TRUE(A.provesLE(LinearExpr("x", 0), LinearExpr("y", 5)));
  EXPECT_FALSE(A.provesLE(LinearExpr("x", 0), LinearExpr("y", 1)));
  EXPECT_FALSE(A.provesLE(LinearExpr("x", 0), LinearExpr(0)));
  EXPECT_TRUE(B.provesLE(LinearExpr("x", 0), LinearExpr("y", 1)));
  EXPECT_TRUE(B.provesLE(LinearExpr("x", 0), LinearExpr(0)));
}

TEST_P(CowTest, ClosureThroughOneCopyIsVisibleToAll) {
  ConstraintGraph A = make();
  A.addLE("x", "y", 1);
  A.addLE("y", "z", 1);
  ConstraintGraph B = A; // Shares the unclosed matrix.

  // Closing A closes the shared block; B must not pay again.
  A.close();
  std::int64_t ClosuresAfterA = Stats.counter("cg.closure.full.calls") +
                                Stats.counter("cg.closure.incr.calls");
  EXPECT_TRUE(B.provesLE(LinearExpr("x", 0), LinearExpr("z", 2)));
  EXPECT_EQ(Stats.counter("cg.closure.full.calls") +
                Stats.counter("cg.closure.incr.calls"),
            ClosuresAfterA);
}

TEST_P(CowTest, EnsureVarOnCopyDoesNotResizeOriginal) {
  ConstraintGraph A = make();
  A.addLE("x", "y", 2);
  ConstraintGraph B = A;
  B.ensureVar("fresh");
  EXPECT_EQ(B.numVars(), 3u);
  EXPECT_EQ(A.numVars(), 2u);
  EXPECT_TRUE(A.provesLE(LinearExpr("x", 0), LinearExpr("y", 2)));
}

TEST_P(CowTest, SelfAssignIsSafe) {
  ConstraintGraph A = make();
  A.addLE("x", "y", 2);
  A = *&A;
  EXPECT_TRUE(A.provesLE(LinearExpr("x", 0), LinearExpr("y", 2)));
}

TEST_P(CowTest, ChainedCopiesDetachIndependently) {
  ConstraintGraph A = make();
  A.addLE("x", "y", 4);
  ConstraintGraph B = A;
  ConstraintGraph C = B;
  C.addLE("x", "y", 2);
  B.addLE("x", "y", 3);
  EXPECT_TRUE(A.provesLE(LinearExpr("x", 0), LinearExpr("y", 4)));
  EXPECT_FALSE(A.provesLE(LinearExpr("x", 0), LinearExpr("y", 3)));
  EXPECT_TRUE(B.provesLE(LinearExpr("x", 0), LinearExpr("y", 3)));
  EXPECT_FALSE(B.provesLE(LinearExpr("x", 0), LinearExpr("y", 2)));
  EXPECT_TRUE(C.provesLE(LinearExpr("x", 0), LinearExpr("y", 2)));
}

//===----------------------------------------------------------------------===//
// Closure memo
//===----------------------------------------------------------------------===//

class MemoTest : public ::testing::TestWithParam<DbmBackend> {
protected:
  ConstraintGraph make() {
    return ConstraintGraph(GetParam(), &Stats, Syms, Memo);
  }
  /// A graph whose close() takes the full-closure path: a cold matrix
  /// (never closed) batches every tightening after the first, so the next
  /// close is a full Floyd-Warshall the memo serves.
  ConstraintGraph makeNeedingFullClose(std::int64_t Seed) {
    ConstraintGraph G = make();
    G.addLE("a", "b", Seed);
    G.addLE("b", "c", Seed + 1);
    G.addLE("c", "d", Seed + 2);
    return G;
  }
  StatsRegistry Stats;
  SymbolTablePtr Syms = std::make_shared<SymbolTable>();
  ClosureMemoPtr Memo = std::make_shared<ClosureMemo>();
};

TEST_P(MemoTest, SecondIdenticalCloseHitsMemo) {
  ConstraintGraph A = makeNeedingFullClose(1);
  A.close();
  std::int64_t Misses = Stats.counter("cg.closure.memo.misses");
  std::int64_t Hits = Stats.counter("cg.closure.memo.hits");
  EXPECT_GT(Misses, 0);

  ConstraintGraph B = makeNeedingFullClose(1);
  B.close();
  EXPECT_GT(Stats.counter("cg.closure.memo.hits"), Hits);
  EXPECT_TRUE(A.equals(B));
}

TEST_P(MemoTest, DifferentConstraintsMissMemo) {
  ConstraintGraph A = makeNeedingFullClose(1);
  A.close();
  ConstraintGraph B = makeNeedingFullClose(7);
  B.close();
  EXPECT_EQ(Stats.counter("cg.closure.memo.hits"), 0);
  EXPECT_FALSE(A.equals(B));
}

TEST_P(MemoTest, MutatingAdoptedResultDoesNotCorruptMemo) {
  ConstraintGraph A = makeNeedingFullClose(1);
  A.close(); // Inserted into the memo.
  ConstraintGraph B = makeNeedingFullClose(1);
  B.close(); // Adopts the memoized block.
  B.addUpperBound("a", -100); // Must detach from the memo entry.

  ConstraintGraph C = makeNeedingFullClose(1);
  C.close(); // Hits the memo again; must match A, not B.
  EXPECT_TRUE(C.equals(A));
  EXPECT_FALSE(C.equals(B));
}

TEST_P(MemoTest, InfeasibleResultIsMemoizedCorrectly) {
  auto MakeInfeasible = [&]() {
    ConstraintGraph G = makeNeedingFullClose(1);
    ConstraintGraph H = make();
    H.addLE("a", "b", -5);
    H.addLE("b", "a", -5); // Cycle of weight -10.
    G.meetWith(H);
    return G;
  };
  ConstraintGraph A = MakeInfeasible();
  EXPECT_FALSE(A.isFeasible());
  ConstraintGraph B = MakeInfeasible();
  EXPECT_FALSE(B.isFeasible());
}

//===----------------------------------------------------------------------===//
// Property-style checks: mutations preserve the closed form
//===----------------------------------------------------------------------===//

class ClosedFormPropertyTest : public ::testing::TestWithParam<DbmBackend> {
protected:
  /// Deterministic pseudo-random graph over N named variables.
  ConstraintGraph randomGraph(unsigned N, std::uint64_t Seed) {
    ConstraintGraph G(GetParam(), &Stats);
    std::uint64_t State = Seed * 6364136223846793005ull + 1442695040888963407ull;
    auto Next = [&]() {
      State = State * 6364136223846793005ull + 1442695040888963407ull;
      return static_cast<std::uint32_t>(State >> 33);
    };
    for (unsigned E = 0; E < 3 * N; ++E) {
      unsigned I = Next() % N;
      unsigned J = Next() % N;
      if (I == J)
        continue;
      // Non-negative weights keep the graph feasible.
      G.addLE(name(I), name(J), static_cast<std::int64_t>(Next() % 17));
    }
    return G;
  }
  static std::string name(unsigned I) { return "v" + std::to_string(I); }
  StatsRegistry Stats;
};

TEST_P(ClosedFormPropertyTest, RemoveVarPreservesRemainingBounds) {
  for (std::uint64_t Seed = 1; Seed <= 5; ++Seed) {
    ConstraintGraph G = randomGraph(6, Seed);
    ASSERT_TRUE(G.isFeasible());
    ConstraintGraph Before = G;
    G.removeVar(name(2));
    for (unsigned I = 0; I < 6; ++I) {
      for (unsigned J = 0; J < 6; ++J) {
        if (I == J || I == 2 || J == 2)
          continue;
        EXPECT_EQ(G.bestBound(name(I), name(J)),
                  Before.bestBound(name(I), name(J)))
            << "seed " << Seed << " pair v" << I << " v" << J;
      }
    }
  }
}

TEST_P(ClosedFormPropertyTest, RenameVarsPreservesBoundsUnderNewNames) {
  for (std::uint64_t Seed = 1; Seed <= 5; ++Seed) {
    ConstraintGraph G = randomGraph(5, Seed);
    ConstraintGraph Before = G;
    std::vector<std::pair<std::string, std::string>> Renames;
    for (unsigned I = 0; I < 5; ++I)
      Renames.emplace_back(name(I), "w" + std::to_string(I));
    G.renameVars(Renames);
    for (unsigned I = 0; I < 5; ++I) {
      for (unsigned J = 0; J < 5; ++J) {
        if (I == J)
          continue;
        EXPECT_EQ(G.bestBound("w" + std::to_string(I),
                              "w" + std::to_string(J)),
                  Before.bestBound(name(I), name(J)))
            << "seed " << Seed;
      }
    }
  }
}

TEST_P(ClosedFormPropertyTest, EquivalentFormsAreProvablyEqual) {
  for (std::uint64_t Seed = 1; Seed <= 5; ++Seed) {
    ConstraintGraph G = randomGraph(5, Seed);
    // Pin a couple of equalities so equivalentForms has something to find.
    G.addEQ(LinearExpr(name(0), 0), LinearExpr(name(1), 3));
    G.addEQ(LinearExpr(name(3), 0), LinearExpr(42));
    for (unsigned V = 0; V < 5; ++V) {
      LinearExpr E(name(V), 1);
      for (const LinearExpr &Form : G.equivalentForms(E))
        EXPECT_TRUE(G.provesEQ(E, Form))
            << "seed " << Seed << ": " << E.str() << " vs " << Form.str();
    }
  }
}

TEST_P(ClosedFormPropertyTest, ResolvedFormQueriesMatchStringQueries) {
  for (std::uint64_t Seed = 1; Seed <= 5; ++Seed) {
    ConstraintGraph G = randomGraph(5, Seed);
    for (unsigned I = 0; I < 5; ++I) {
      for (unsigned J = 0; J < 5; ++J) {
        for (std::int64_t C : {-3, 0, 3}) {
          LinearExpr L(name(I), 0), R(name(J), C);
          EXPECT_EQ(G.provesLE(G.resolve(L), G.resolve(R)),
                    G.provesLE(L, R))
              << "seed " << Seed;
        }
      }
    }
    // Forms mentioning unknown variables behave like the string path too.
    LinearExpr Unknown("never-seen", 0);
    EXPECT_EQ(G.provesLE(G.resolve(Unknown), G.resolve(LinearExpr(5))),
              G.provesLE(Unknown, LinearExpr(5)));
    EXPECT_EQ(G.provesLE(G.resolve(Unknown), G.resolve(Unknown)),
              G.provesLE(Unknown, Unknown));
  }
}

//===----------------------------------------------------------------------===//
// Thread-safe stats
//===----------------------------------------------------------------------===//

TEST(StatsThreadSafetyTest, ConcurrentCountersSumExactly) {
  StatsRegistry R;
  constexpr int Threads = 4;
  constexpr int PerThread = 10000;
  std::vector<std::thread> Pool;
  for (int T = 0; T < Threads; ++T)
    Pool.emplace_back([&R]() {
      for (int I = 0; I < PerThread; ++I)
        R.addCounter("shared.counter");
    });
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(R.counter("shared.counter"), Threads * PerThread);
}

INSTANTIATE_TEST_SUITE_P(Backends, CowTest,
                         ::testing::Values(DbmBackend::Dense,
                                           DbmBackend::MapBased));
INSTANTIATE_TEST_SUITE_P(Backends, MemoTest,
                         ::testing::Values(DbmBackend::Dense,
                                           DbmBackend::MapBased));
INSTANTIATE_TEST_SUITE_P(Backends, ClosedFormPropertyTest,
                         ::testing::Values(DbmBackend::Dense,
                                           DbmBackend::MapBased));

} // namespace
