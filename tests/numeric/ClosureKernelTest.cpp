//===- tests/numeric/ClosureKernelTest.cpp --------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Property suite for the v2 flat closure kernels. The v1 naive triple
// loop (kernel::fullCloseRef / closeAfterEdgeRef, virtual get/set) is
// kept as the test-only oracle: on every random matrix the blocked/
// sparse flat kernel must agree with it entry for entry whenever the
// system is feasible, and must report infeasibility on exactly the same
// inputs. (On infeasible inputs the matrix *content* may differ — the
// engine never reads a matrix once isFeasible() is false, and both
// kernels' callers discard it.)
//
//===----------------------------------------------------------------------===//

#include "numeric/ClosureKernel.h"

#include "gtest/gtest.h"

#include <cstdint>
#include <random>
#include <vector>

using namespace csdf;

namespace {

/// Snapshot of the logical N x N contents, layout-independent.
std::vector<std::int64_t> contents(const DbmStorage &M) {
  std::vector<std::int64_t> Out;
  unsigned N = M.size();
  Out.reserve(static_cast<std::size_t>(N) * N);
  for (unsigned I = 0; I < N; ++I)
    for (unsigned J = 0; J < N; ++J)
      Out.push_back(M.get(I, J));
  return Out;
}

/// Dense matrix initialized like ConstraintGraph does it: zero diagonal,
/// everything else unconstrained. Grown one variable at a time to also
/// exercise the capacity-stride resize path the engine uses.
DenseDbmStorage makeDense(unsigned N) {
  DenseDbmStorage M;
  for (unsigned I = 1; I <= N; ++I)
    M.resize(I);
  for (unsigned I = 0; I < N; ++I)
    M.set(I, I, 0);
  return M;
}

/// Random constraint matrix over N variables. Density is the probability
/// an off-diagonal entry carries a finite bound; Lo/Hi the bound range.
DenseDbmStorage randomMatrix(std::mt19937 &Rng, unsigned N, double Density,
                             std::int64_t Lo, std::int64_t Hi) {
  DenseDbmStorage M = makeDense(N);
  std::uniform_real_distribution<double> Coin(0.0, 1.0);
  std::uniform_int_distribution<std::int64_t> Bound(Lo, Hi);
  for (unsigned I = 0; I < N; ++I)
    for (unsigned J = 0; J < N; ++J)
      if (I != J && Coin(Rng) < Density)
        M.set(I, J, Bound(Rng));
  return M;
}

/// Runs the flat kernel and the naive oracle on identical copies and
/// checks agreement. Returns the shared feasibility verdict.
bool checkAgainstOracle(const DenseDbmStorage &Input) {
  DenseDbmStorage Flat = Input;
  auto RefPtr = Input.clone();

  bool FlatFeasible = kernel::fullCloseDense(Flat);
  bool RefFeasible = kernel::fullCloseRef(*RefPtr);

  EXPECT_EQ(FlatFeasible, RefFeasible);
  if (FlatFeasible && RefFeasible) {
    EXPECT_EQ(contents(Flat), contents(*RefPtr));
  }
  return FlatFeasible && RefFeasible;
}

//===----------------------------------------------------------------------===//
// Full closure vs oracle
//===----------------------------------------------------------------------===//

// Sizes straddling the tile boundary: empty, single, tile-1, tile,
// tile+1, and a multi-tile matrix.
const unsigned KernelSizes[] = {0,
                                1,
                                kernel::ClosureTile - 1,
                                kernel::ClosureTile,
                                kernel::ClosureTile + 1,
                                64};

TEST(ClosureKernelTest, RandomDenseMatricesMatchOracle) {
  std::mt19937 Rng(12345);
  unsigned Feasible = 0, Infeasible = 0;
  for (unsigned N : KernelSizes)
    for (int Round = 0; Round < 8; ++Round) {
      // Mixed-sign bounds at moderate density: a healthy share of both
      // feasible and negative-cycle systems.
      DenseDbmStorage M = randomMatrix(Rng, N, 0.3, -20, 40);
      (checkAgainstOracle(M) ? Feasible : Infeasible)++;
    }
  // The sweep must actually exercise both verdicts (trivially true for
  // N=0/1 rounds being feasible; the negative bounds supply the rest).
  EXPECT_GT(Feasible, 0u);
  EXPECT_GT(Infeasible, 0u);
}

TEST(ClosureKernelTest, SparseMatricesMatchOracle) {
  std::mt19937 Rng(777);
  for (unsigned N : KernelSizes)
    for (int Round = 0; Round < 4; ++Round) {
      // Mostly-unconstrained: most rows empty, so the occupancy skip is
      // the code path under test.
      DenseDbmStorage M = randomMatrix(Rng, N, 0.02, -5, 30);
      checkAgainstOracle(M);
    }
}

TEST(ClosureKernelTest, NonNegativeMatricesStayFeasible) {
  std::mt19937 Rng(4242);
  for (unsigned N : KernelSizes) {
    DenseDbmStorage M = randomMatrix(Rng, N, 0.5, 0, 100);
    EXPECT_TRUE(checkAgainstOracle(M));
  }
}

TEST(ClosureKernelTest, DetectsNegativeCycle) {
  // v0 <= v1 - 3, v1 <= v0 + 2: cycle weight -1.
  DenseDbmStorage M = makeDense(8);
  M.set(0, 1, -3);
  M.set(1, 0, 2);
  DenseDbmStorage Ref = M;
  EXPECT_FALSE(kernel::fullCloseDense(M));
  EXPECT_FALSE(kernel::fullCloseRef(Ref));
}

TEST(ClosureKernelTest, SaturationAtInfinityEdges) {
  // Bounds near DbmInfinity must saturate, not wrap: a finite negative
  // plus an unconstrained entry stays unconstrained, and chained huge
  // bounds clamp to DbmInfinity exactly like dbmAdd.
  std::mt19937 Rng(99);
  for (int Round = 0; Round < 8; ++Round) {
    DenseDbmStorage M = makeDense(40);
    std::uniform_int_distribution<unsigned> Var(0, 39);
    std::uniform_int_distribution<int> Kind(0, 2);
    for (int E = 0; E < 60; ++E) {
      unsigned I = Var(Rng), J = Var(Rng);
      if (I == J)
        continue;
      switch (Kind(Rng)) {
      case 0:
        M.set(I, J, DbmInfinity - 1); // one below the saturation point
        break;
      case 1:
        M.set(I, J, DbmInfinity / 2); // sums cross DbmInfinity
        break;
      default:
        M.set(I, J, -7);
        break;
      }
    }
    if (!checkAgainstOracle(M))
      continue;
    // Saturated closure must never exceed the sentinel.
    DenseDbmStorage Closed = M;
    ASSERT_TRUE(kernel::fullCloseDense(Closed));
    for (std::int64_t V : contents(Closed))
      EXPECT_LE(V, DbmInfinity);
  }
}

TEST(ClosureKernelTest, ClosureIsIdempotent) {
  std::mt19937 Rng(31337);
  for (unsigned N : KernelSizes) {
    DenseDbmStorage M = randomMatrix(Rng, N, 0.3, 0, 50);
    ASSERT_TRUE(kernel::fullCloseDense(M));
    DenseDbmStorage Again = M;
    ASSERT_TRUE(kernel::fullCloseDense(Again));
    EXPECT_EQ(contents(M), contents(Again));
  }
}

//===----------------------------------------------------------------------===//
// Incremental repair vs oracle
//===----------------------------------------------------------------------===//

TEST(ClosureKernelTest, EdgeRepairMatchesOracle) {
  std::mt19937 Rng(2026);
  for (unsigned N : {2u, kernel::ClosureTile, 64u}) {
    for (int Round = 0; Round < 8; ++Round) {
      // Start from a closed feasible matrix, then tighten one edge — the
      // warm-path pattern ConstraintGraph::addEdge produces.
      DenseDbmStorage Base = randomMatrix(Rng, N, 0.3, 0, 50);
      ASSERT_TRUE(kernel::fullCloseDense(Base));

      std::uniform_int_distribution<unsigned> Var(0, N - 1);
      unsigned I = Var(Rng), J = Var(Rng);
      if (I == J)
        continue;
      std::int64_t Tight =
          Round < 6 ? Base.get(I, J) / 2 - 1 : -30; // sometimes infeasible
      if (Tight >= Base.get(I, J))
        continue; // addEdge only repairs on an actual tightening
      Base.set(I, J, Tight);

      DenseDbmStorage Flat = Base;
      auto Ref = Base.clone();
      bool FlatFeasible = kernel::closeAfterEdgeDense(Flat, I, J);
      bool RefFeasible = kernel::closeAfterEdgeRef(*Ref, I, J);
      EXPECT_EQ(FlatFeasible, RefFeasible);
      if (FlatFeasible) {
        EXPECT_EQ(contents(Flat), contents(*Ref));
        // Repair of a single tightened edge must equal a full re-closure.
        DenseDbmStorage Full = Base;
        ASSERT_TRUE(kernel::fullCloseDense(Full));
        EXPECT_EQ(contents(Flat), contents(Full));
      }
    }
  }
}

TEST(ClosureKernelTest, EdgeRepairDetectsNegativeCycle) {
  DenseDbmStorage M = makeDense(16);
  M.set(3, 7, 5);
  ASSERT_TRUE(kernel::fullCloseDense(M));
  M.set(7, 3, -6); // closes the cycle at weight -1
  DenseDbmStorage Ref = M;
  EXPECT_FALSE(kernel::closeAfterEdgeDense(M, 7, 3));
  EXPECT_FALSE(kernel::closeAfterEdgeRef(Ref, 7, 3));
}

//===----------------------------------------------------------------------===//
// Dispatch
//===----------------------------------------------------------------------===//

TEST(ClosureKernelTest, DispatchRoutesDenseToFlatKernel) {
  // fullClose on a DbmStorage& must behave identically whether the
  // dynamic type is dense (flat kernel) or map (reference kernel).
  std::mt19937 Rng(5150);
  DenseDbmStorage Dense = randomMatrix(Rng, 48, 0.3, -10, 40);
  MapDbmStorage Map;
  Map.resize(48);
  for (unsigned I = 0; I < 48; ++I)
    for (unsigned J = 0; J < 48; ++J)
      Map.set(I, J, Dense.get(I, J));

  bool DenseFeasible = kernel::fullClose(Dense);
  bool MapFeasible = kernel::fullClose(Map);
  EXPECT_EQ(DenseFeasible, MapFeasible);
  if (DenseFeasible) {
    EXPECT_EQ(contents(Dense), contents(Map));
  }
}

} // namespace
