//===- tests/numeric/LinearExprTest.cpp - var+c recognizer tests --------------===//

#include "numeric/LinearExpr.h"

#include "lang/Parser.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace csdf;

namespace {

class LinearExprTest : public ::testing::Test {
protected:
  const Expr *parseExpr(const std::string &Text) {
    ParseResult R = parseProgram("x = " + Text + ";");
    EXPECT_TRUE(R.succeeded()) << Text;
    Programs.push_back(std::move(R.Prog));
    return cast<AssignStmt>(Programs.back().body()[0])->value();
  }

  std::vector<Program> Programs;
};

TEST_F(LinearExprTest, RecognizesConstant) {
  auto L = LinearExpr::fromExpr(parseExpr("7"));
  ASSERT_TRUE(L.has_value());
  EXPECT_TRUE(L->isConstant());
  EXPECT_EQ(L->constant(), 7);
}

TEST_F(LinearExprTest, FoldsConstantArithmetic) {
  auto L = LinearExpr::fromExpr(parseExpr("2 * 3 + 4"));
  ASSERT_TRUE(L.has_value());
  EXPECT_EQ(L->constant(), 10);
}

TEST_F(LinearExprTest, RecognizesVar) {
  auto L = LinearExpr::fromExpr(parseExpr("id"));
  ASSERT_TRUE(L.has_value());
  EXPECT_EQ(L->var(), "id");
  EXPECT_EQ(L->constant(), 0);
}

TEST_F(LinearExprTest, RecognizesVarPlusConst) {
  auto L = LinearExpr::fromExpr(parseExpr("id + 1"));
  ASSERT_TRUE(L.has_value());
  EXPECT_EQ(L->var(), "id");
  EXPECT_EQ(L->constant(), 1);
}

TEST_F(LinearExprTest, RecognizesConstPlusVar) {
  auto L = LinearExpr::fromExpr(parseExpr("3 + i"));
  ASSERT_TRUE(L.has_value());
  EXPECT_EQ(L->var(), "i");
  EXPECT_EQ(L->constant(), 3);
}

TEST_F(LinearExprTest, RecognizesVarMinusConst) {
  auto L = LinearExpr::fromExpr(parseExpr("id - 1"));
  ASSERT_TRUE(L.has_value());
  EXPECT_EQ(L->var(), "id");
  EXPECT_EQ(L->constant(), -1);
}

TEST_F(LinearExprTest, FoldsNestedConstantsAroundVar) {
  auto L = LinearExpr::fromExpr(parseExpr("(np - 1) + 0"));
  ASSERT_TRUE(L.has_value());
  EXPECT_EQ(L->var(), "np");
  EXPECT_EQ(L->constant(), -1);
}

TEST_F(LinearExprTest, RejectsVarPlusVar) {
  EXPECT_FALSE(LinearExpr::fromExpr(parseExpr("id + i")).has_value());
}

TEST_F(LinearExprTest, RejectsMultiplication) {
  EXPECT_FALSE(LinearExpr::fromExpr(parseExpr("2 * id")).has_value());
}

TEST_F(LinearExprTest, RejectsDivMod) {
  EXPECT_FALSE(LinearExpr::fromExpr(parseExpr("id / 2")).has_value());
  EXPECT_FALSE(LinearExpr::fromExpr(parseExpr("id % 2")).has_value());
}

TEST_F(LinearExprTest, RejectsConstMinusVar) {
  EXPECT_FALSE(LinearExpr::fromExpr(parseExpr("5 - id")).has_value());
}

TEST_F(LinearExprTest, NegativeConstant) {
  auto L = LinearExpr::fromExpr(parseExpr("-4"));
  ASSERT_TRUE(L.has_value());
  EXPECT_EQ(L->constant(), -4);
}

TEST_F(LinearExprTest, PlusAndOrdering) {
  LinearExpr A("i", 1);
  EXPECT_EQ(A.plus(2), LinearExpr("i", 3));
  EXPECT_LT(LinearExpr(3), LinearExpr("a", 0));
  EXPECT_LT(LinearExpr("a", 0), LinearExpr("a", 1));
}

TEST_F(LinearExprTest, StrFormat) {
  EXPECT_EQ(LinearExpr("i", 0).str(), "i");
  EXPECT_EQ(LinearExpr("i", 2).str(), "i+2");
  EXPECT_EQ(LinearExpr("i", -2).str(), "i-2");
  EXPECT_EQ(LinearExpr(5).str(), "5");
}

} // namespace
