//===- tests/numeric/ConstraintGraphTest.cpp - DBM domain tests --------------===//

#include "numeric/ConstraintGraph.h"

#include <gtest/gtest.h>

using namespace csdf;

namespace {

/// Both backends must behave identically; every test runs on both.
class ConstraintGraphTest : public ::testing::TestWithParam<DbmBackend> {
protected:
  ConstraintGraph make() { return ConstraintGraph(GetParam()); }
};

TEST_P(ConstraintGraphTest, EmptyGraphIsFeasibleTop) {
  ConstraintGraph G = make();
  EXPECT_TRUE(G.isFeasible());
  EXPECT_EQ(G.numVars(), 0u);
}

TEST_P(ConstraintGraphTest, TransitivityIsClosed) {
  ConstraintGraph G = make();
  G.addLE("a", "b", 1); // a <= b + 1
  G.addLE("b", "c", 2); // b <= c + 2
  EXPECT_TRUE(G.provesLE(LinearExpr("a", 0), LinearExpr("c", 3)));
  EXPECT_FALSE(G.provesLE(LinearExpr("a", 0), LinearExpr("c", 2)));
}

TEST_P(ConstraintGraphTest, ContradictionIsInfeasible) {
  ConstraintGraph G = make();
  G.addUpperBound("x", 3);
  G.addLowerBound("x", 5);
  EXPECT_FALSE(G.isFeasible());
}

TEST_P(ConstraintGraphTest, InfeasibleProvesEverything) {
  ConstraintGraph G = make();
  G.addUpperBound("x", 0);
  G.addLowerBound("x", 1);
  EXPECT_TRUE(G.provesLE(LinearExpr(100), LinearExpr(0)));
}

TEST_P(ConstraintGraphTest, ConstValueDetection) {
  ConstraintGraph G = make();
  G.addEQ(LinearExpr("x", 0), LinearExpr(5));
  EXPECT_EQ(G.constValue("x"), 5);
  EXPECT_FALSE(G.constValue("y").has_value());
}

TEST_P(ConstraintGraphTest, EqualityPropagatesThroughChain) {
  ConstraintGraph G = make();
  G.addEQ(LinearExpr("x", 0), LinearExpr("y", 1)); // x = y + 1
  G.addEQ(LinearExpr("y", 0), LinearExpr(4));
  EXPECT_EQ(G.constValue("x"), 5);
  EXPECT_EQ(G.offsetBetween("x", "y"), 1);
}

TEST_P(ConstraintGraphTest, SameVarComparisonsNeedNoGraph) {
  ConstraintGraph G = make();
  EXPECT_TRUE(G.provesLE(LinearExpr("q", 1), LinearExpr("q", 2)));
  EXPECT_FALSE(G.provesLE(LinearExpr("q", 2), LinearExpr("q", 1)));
}

TEST_P(ConstraintGraphTest, AssignConstant) {
  ConstraintGraph G = make();
  G.assign("x", LinearExpr(7));
  EXPECT_EQ(G.constValue("x"), 7);
  G.assign("x", LinearExpr(9));
  EXPECT_EQ(G.constValue("x"), 9);
}

TEST_P(ConstraintGraphTest, AssignVarPlusConst) {
  ConstraintGraph G = make();
  G.assign("y", LinearExpr(3));
  G.assign("x", LinearExpr("y", 2));
  EXPECT_EQ(G.constValue("x"), 5);
  // Reassigning y must not retroactively change x.
  G.assign("y", LinearExpr(100));
  EXPECT_EQ(G.constValue("x"), 5);
}

TEST_P(ConstraintGraphTest, SelfIncrementShiftsExactly) {
  ConstraintGraph G = make();
  G.assign("i", LinearExpr(1));
  G.assign("i", LinearExpr("i", 1)); // i := i + 1
  EXPECT_EQ(G.constValue("i"), 2);
}

TEST_P(ConstraintGraphTest, SelfIncrementPreservesRelations) {
  ConstraintGraph G = make();
  G.addEQ(LinearExpr("i", 0), LinearExpr("n", 0)); // i == n
  G.assign("i", LinearExpr("i", 1));
  EXPECT_EQ(G.offsetBetween("i", "n"), 1); // i == n + 1
}

TEST_P(ConstraintGraphTest, HavocForgetsOnlyOneVariable) {
  ConstraintGraph G = make();
  G.assign("x", LinearExpr(1));
  G.assign("y", LinearExpr(2));
  G.havoc("x");
  EXPECT_FALSE(G.constValue("x").has_value());
  EXPECT_EQ(G.constValue("y"), 2);
}

TEST_P(ConstraintGraphTest, HavocKeepsImpliedFacts) {
  ConstraintGraph G = make();
  G.addLE("a", "b", 0);
  G.addLE("b", "c", 0);
  G.havoc("b");
  // a <= c survives through the closure even though b is gone.
  EXPECT_TRUE(G.provesLE(LinearExpr("a", 0), LinearExpr("c", 0)));
}

TEST_P(ConstraintGraphTest, RemoveVarProjects) {
  ConstraintGraph G = make();
  G.addLE("a", "b", 1);
  G.addLE("b", "c", 1);
  G.removeVar("b");
  EXPECT_FALSE(G.hasVar("b"));
  EXPECT_TRUE(G.provesLE(LinearExpr("a", 0), LinearExpr("c", 2)));
}

TEST_P(ConstraintGraphTest, JoinKeepsCommonFacts) {
  ConstraintGraph A = make();
  A.assign("x", LinearExpr(1));
  ConstraintGraph B = make();
  B.assign("x", LinearExpr(3));
  A.joinWith(B);
  EXPECT_TRUE(A.isFeasible());
  EXPECT_FALSE(A.constValue("x").has_value());
  // But the range [1..3] is retained.
  EXPECT_TRUE(A.provesLE(LinearExpr("x", 0), LinearExpr(3)));
  EXPECT_TRUE(A.provesLE(LinearExpr(1), LinearExpr("x", 0)));
}

TEST_P(ConstraintGraphTest, JoinWithInfeasibleIsIdentity) {
  ConstraintGraph A = make();
  A.assign("x", LinearExpr(1));
  ConstraintGraph Bot = make();
  Bot.addUpperBound("q", 0);
  Bot.addLowerBound("q", 1);
  A.joinWith(Bot);
  EXPECT_EQ(A.constValue("x"), 1);

  ConstraintGraph Bot2 = make();
  Bot2.addUpperBound("q", 0);
  Bot2.addLowerBound("q", 1);
  ConstraintGraph B = make();
  B.assign("y", LinearExpr(2));
  Bot2.joinWith(B);
  EXPECT_EQ(Bot2.constValue("y"), 2);
}

TEST_P(ConstraintGraphTest, JoinUnionOfVariableSets) {
  ConstraintGraph A = make();
  A.assign("x", LinearExpr(1));
  ConstraintGraph B = make();
  B.assign("y", LinearExpr(2));
  A.joinWith(B);
  // x constrained only on one side -> unconstrained after join.
  EXPECT_FALSE(A.constValue("x").has_value());
  EXPECT_FALSE(A.constValue("y").has_value());
}

TEST_P(ConstraintGraphTest, MeetConjoins) {
  ConstraintGraph A = make();
  A.addUpperBound("x", 5);
  ConstraintGraph B = make();
  B.addLowerBound("x", 5);
  A.meetWith(B);
  EXPECT_EQ(A.constValue("x"), 5);
}

TEST_P(ConstraintGraphTest, MeetCanBecomeInfeasible) {
  ConstraintGraph A = make();
  A.addUpperBound("x", 1);
  ConstraintGraph B = make();
  B.addLowerBound("x", 2);
  A.meetWith(B);
  EXPECT_FALSE(A.isFeasible());
}

TEST_P(ConstraintGraphTest, WideningDropsUnstableBounds) {
  ConstraintGraph Old = make();
  Old.assign("i", LinearExpr(1)); // i == 1
  ConstraintGraph New = make();
  New.assign("i", LinearExpr(2)); // i == 2
  New.addLowerBound("i", 1);      // also knows i >= 1
  Old.widenWith(New);
  // Upper bound unstable -> dropped; lower bound stable -> kept.
  EXPECT_FALSE(Old.constValue("i").has_value());
  EXPECT_TRUE(Old.provesLE(LinearExpr(1), LinearExpr("i", 0)));
  EXPECT_FALSE(Old.provesLE(LinearExpr("i", 0), LinearExpr(1000000)));
}

TEST_P(ConstraintGraphTest, WideningReachesFixpoint) {
  // Simulating i = 1; while ... i = i + 1: widening must converge.
  ConstraintGraph State = make();
  State.assign("i", LinearExpr(1));
  for (int Iter = 0; Iter < 3; ++Iter) {
    ConstraintGraph Next = State;
    Next.assign("i", LinearExpr("i", 1));
    ConstraintGraph Widened = State;
    Widened.widenWith(Next);
    if (Widened.equals(State))
      break;
    State = Widened;
    EXPECT_LT(Iter, 2) << "widening failed to converge";
  }
  EXPECT_TRUE(State.provesLE(LinearExpr(1), LinearExpr("i", 0)));
}

TEST_P(ConstraintGraphTest, ImpliesIsReflexiveAndOrdered) {
  ConstraintGraph A = make();
  A.assign("x", LinearExpr(5));
  ConstraintGraph B = make();
  B.addUpperBound("x", 10);
  EXPECT_TRUE(A.implies(A));
  EXPECT_TRUE(A.implies(B));
  EXPECT_FALSE(B.implies(A));
}

TEST_P(ConstraintGraphTest, EquivalentFormsFindsAliases) {
  ConstraintGraph G = make();
  G.addEQ(LinearExpr("ub", 0), LinearExpr("i", -1)); // ub == i - 1
  G.addEQ(LinearExpr("i", 0), LinearExpr(3));
  std::vector<LinearExpr> Forms =
      G.equivalentForms(LinearExpr("ub", 0));
  // Expect ub, i-1, and the constant 2.
  EXPECT_NE(std::find(Forms.begin(), Forms.end(), LinearExpr("ub", 0)),
            Forms.end());
  EXPECT_NE(std::find(Forms.begin(), Forms.end(), LinearExpr("i", -1)),
            Forms.end());
  EXPECT_NE(std::find(Forms.begin(), Forms.end(), LinearExpr(2)),
            Forms.end());
}

TEST_P(ConstraintGraphTest, RenameVars) {
  ConstraintGraph G = make();
  G.assign("x", LinearExpr(4));
  G.renameVars({{"x", "z"}});
  EXPECT_FALSE(G.hasVar("x"));
  EXPECT_EQ(G.constValue("z"), 4);
}

TEST_P(ConstraintGraphTest, SwapRename) {
  ConstraintGraph G = make();
  G.assign("a", LinearExpr(1));
  G.assign("b", LinearExpr(2));
  G.renameVars({{"a", "b"}, {"b", "a"}});
  EXPECT_EQ(G.constValue("a"), 2);
  EXPECT_EQ(G.constValue("b"), 1);
}

TEST_P(ConstraintGraphTest, StrMentionsConstraints) {
  ConstraintGraph G = make();
  G.addUpperBound("x", 3);
  std::string S = G.str();
  EXPECT_NE(S.find("x"), std::string::npos);
}

TEST_P(ConstraintGraphTest, StatsCountClosures) {
  StatsRegistry Local;
  ConstraintGraph G(GetParam(), &Local);
  G.addLE("a", "b", 0);
  G.isFeasible(); // Triggers one closure (incremental: single edge).
  G.addLE("b", "c", 0);
  G.addLE("c", "a", 0);
  G.isFeasible();
  EXPECT_GT(Local.counter("cg.closure.incr.calls") +
                Local.counter("cg.closure.full.calls"),
            0);
}

TEST_P(ConstraintGraphTest, LoopCounterScenarioFromFigure5) {
  // Models the exchange-with-root loop head state: i is the loop counter,
  // the released receiver block is [1 .. i-1] after the increment.
  ConstraintGraph G = make();
  G.assign("i", LinearExpr(1));
  G.addLowerBound("np", 2);
  // First iteration body: released block is [i .. i] == [1 .. 1].
  G.assign("lo", LinearExpr("i", 0));
  G.assign("hi", LinearExpr("i", 0));
  G.assign("i", LinearExpr("i", 1));
  // Now lo == i-1 and hi == i-1 must be provable.
  EXPECT_TRUE(G.provesEQ(LinearExpr("lo", 0), LinearExpr("i", -1)));
  EXPECT_TRUE(G.provesEQ(LinearExpr("hi", 0), LinearExpr("i", -1)));
}

INSTANTIATE_TEST_SUITE_P(Backends, ConstraintGraphTest,
                         ::testing::Values(DbmBackend::Dense,
                                           DbmBackend::MapBased),
                         [](const ::testing::TestParamInfo<DbmBackend> &I) {
                           return I.param == DbmBackend::Dense ? "Dense"
                                                               : "MapBased";
                         });

} // namespace
