//===- tests/numeric/DbmPropertyTest.cpp - Randomized lattice laws -------------===//
//
// Property tests over randomly generated constraint graphs: the domain
// operations must satisfy the abstract-interpretation laws the pCFG
// engine relies on (closure soundness, join as upper bound, meet as lower
// bound, widening stability, havoc monotonicity). Uses a deterministic
// xorshift generator so failures are reproducible.
//
//===----------------------------------------------------------------------===//

#include "numeric/ConstraintGraph.h"

#include <gtest/gtest.h>

using namespace csdf;

namespace {

class Rng {
public:
  explicit Rng(std::uint64_t Seed) : State(Seed | 1) {}

  std::uint64_t next() {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    return State * 0x2545F4914F6CDD1Dull;
  }

  std::int64_t range(std::int64_t Lo, std::int64_t Hi) {
    return Lo + static_cast<std::int64_t>(next() %
                                          static_cast<std::uint64_t>(
                                              Hi - Lo + 1));
  }

private:
  std::uint64_t State;
};

std::string varName(int I) { return "v" + std::to_string(I); }

/// Builds a random feasible-ish graph over NumVars variables.
ConstraintGraph randomGraph(Rng &R, int NumVars, int NumEdges,
                            DbmBackend Backend) {
  ConstraintGraph G(Backend);
  for (int E = 0; E < NumEdges; ++E) {
    int A = static_cast<int>(R.range(0, NumVars - 1));
    int B = static_cast<int>(R.range(0, NumVars - 1));
    if (A == B)
      continue;
    // Bias toward non-negative bounds so most graphs stay feasible.
    G.addLE(varName(A), varName(B), R.range(-1, 6));
  }
  return G;
}

/// A concrete assignment satisfying... we instead check laws relationally
/// via implies(), which is the graph's own entailment; closure soundness
/// is checked by sampling entailed facts.
class DbmPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DbmPropertyTest, JoinIsUpperBound) {
  Rng R(GetParam());
  for (int Trial = 0; Trial < 20; ++Trial) {
    ConstraintGraph A = randomGraph(R, 5, 8, DbmBackend::Dense);
    ConstraintGraph B = randomGraph(R, 5, 8, DbmBackend::Dense);
    ConstraintGraph J = A;
    J.joinWith(B);
    EXPECT_TRUE(A.implies(J)) << "A must refine join(A,B)";
    EXPECT_TRUE(B.implies(J)) << "B must refine join(A,B)";
  }
}

TEST_P(DbmPropertyTest, JoinIsCommutativeUpToEquivalence) {
  Rng R(GetParam() + 100);
  for (int Trial = 0; Trial < 20; ++Trial) {
    ConstraintGraph A = randomGraph(R, 4, 7, DbmBackend::Dense);
    ConstraintGraph B = randomGraph(R, 4, 7, DbmBackend::Dense);
    ConstraintGraph AB = A;
    AB.joinWith(B);
    ConstraintGraph BA = B;
    BA.joinWith(A);
    EXPECT_TRUE(AB.equals(BA));
  }
}

TEST_P(DbmPropertyTest, MeetIsLowerBound) {
  Rng R(GetParam() + 200);
  for (int Trial = 0; Trial < 20; ++Trial) {
    ConstraintGraph A = randomGraph(R, 5, 6, DbmBackend::Dense);
    ConstraintGraph B = randomGraph(R, 5, 6, DbmBackend::Dense);
    ConstraintGraph M = A;
    M.meetWith(B);
    EXPECT_TRUE(M.implies(A));
    EXPECT_TRUE(M.implies(B));
  }
}

TEST_P(DbmPropertyTest, WideningIsUpperBoundOfOldState) {
  Rng R(GetParam() + 300);
  for (int Trial = 0; Trial < 20; ++Trial) {
    ConstraintGraph Old = randomGraph(R, 5, 8, DbmBackend::Dense);
    ConstraintGraph New = randomGraph(R, 5, 8, DbmBackend::Dense);
    ConstraintGraph W = Old;
    W.widenWith(New);
    EXPECT_TRUE(Old.implies(W));
    EXPECT_TRUE(New.implies(W));
  }
}

TEST_P(DbmPropertyTest, WideningChainStabilizes) {
  // Repeated widening against ever-weaker states must reach a fixpoint
  // quickly (thresholds add at most a constant number of extra steps).
  Rng R(GetParam() + 400);
  ConstraintGraph State(DbmBackend::Dense);
  State.assign("x", LinearExpr(0));
  State.addLowerBound("n", 4);
  int Steps = 0;
  for (; Steps < 20; ++Steps) {
    ConstraintGraph Next = State;
    Next.assign("x", LinearExpr("x", static_cast<std::int64_t>(
                                         R.range(1, 3))));
    ConstraintGraph W = State;
    W.widenWith(Next);
    if (W.equals(State))
      break;
    State = W;
  }
  EXPECT_LT(Steps, 10) << "widening chain too long";
}

TEST_P(DbmPropertyTest, BackendsAgreeOnEntailment) {
  Rng RD(GetParam() + 500);
  Rng RM(GetParam() + 500);
  for (int Trial = 0; Trial < 10; ++Trial) {
    ConstraintGraph D = randomGraph(RD, 5, 9, DbmBackend::Dense);
    ConstraintGraph M = randomGraph(RM, 5, 9, DbmBackend::MapBased);
    EXPECT_EQ(D.isFeasible(), M.isFeasible());
    for (int A = 0; A < 5; ++A)
      for (int B = 0; B < 5; ++B) {
        if (A == B)
          continue;
        EXPECT_EQ(D.bestBound(varName(A), varName(B)),
                  M.bestBound(varName(A), varName(B)))
            << varName(A) << " vs " << varName(B);
      }
  }
}

TEST_P(DbmPropertyTest, HavocWeakens) {
  Rng R(GetParam() + 600);
  for (int Trial = 0; Trial < 20; ++Trial) {
    ConstraintGraph A = randomGraph(R, 5, 8, DbmBackend::Dense);
    if (!A.isFeasible())
      continue;
    ConstraintGraph H = A;
    H.havoc(varName(static_cast<int>(R.range(0, 4))));
    EXPECT_TRUE(A.implies(H));
  }
}

TEST_P(DbmPropertyTest, RemoveVarPreservesOtherEntailments) {
  Rng R(GetParam() + 700);
  for (int Trial = 0; Trial < 20; ++Trial) {
    ConstraintGraph A = randomGraph(R, 5, 9, DbmBackend::Dense);
    if (!A.isFeasible())
      continue;
    ConstraintGraph P = A;
    P.removeVar(varName(2));
    for (int X : {0, 1, 3, 4})
      for (int Y : {0, 1, 3, 4}) {
        if (X == Y)
          continue;
        EXPECT_EQ(A.bestBound(varName(X), varName(Y)),
                  P.bestBound(varName(X), varName(Y)));
      }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DbmPropertyTest,
                         ::testing::Values(1, 7, 42, 1234, 987654));

} // namespace
