//===- tests/numeric/MemoSnapshotTest.cpp ---------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// ClosureMemo snapshots: serialize -> adopt round trip, the all-or-nothing
// rejection discipline (salt mismatch, truncation, bit flips, trailing
// garbage, unknown backend bytes each reject the whole file with nothing
// inserted), and the on-disk save/load path including quarantine of
// corrupt files.
//
//===----------------------------------------------------------------------===//

#include "numeric/MemoSnapshot.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

using namespace csdf;
namespace fs = std::filesystem;

namespace {

/// Builds a closed block the way the engine leaves them: matrix filled,
/// Closed, EverClosed, Feasible as given.
std::shared_ptr<DbmShared> makeBlock(unsigned N, std::int64_t Seed,
                                     bool Feasible,
                                     DbmBackend Backend = DbmBackend::Dense) {
  auto Block = std::make_shared<DbmShared>(makeDbmStorage(Backend));
  Block->M->resize(N);
  for (unsigned I = 0; I < N; ++I)
    for (unsigned J = 0; J < N; ++J)
      Block->M->set(I, J, I == J ? 0 : Seed + static_cast<std::int64_t>(I) *
                                                  N +
                                              J);
  Block->Closed = true;
  Block->Feasible = Feasible;
  Block->EverClosed = true;
  return Block;
}

/// The pre-image the memo keys an entry on: any n*n vector works, the
/// memo compares it byte-for-byte.
std::vector<std::int64_t> makePre(unsigned N, std::int64_t Seed) {
  std::vector<std::int64_t> Pre(static_cast<std::size_t>(N) * N);
  for (std::size_t I = 0; I < Pre.size(); ++I)
    Pre[I] = Seed - static_cast<std::int64_t>(I);
  return Pre;
}

/// Fills \p Memo with a few representative entries: two backends, an
/// infeasible block, and two entries sharing a key (the memo is a
/// multimap). Fill-in-place because ClosureMemo owns a mutex and cannot
/// be moved.
void fillMemo(ClosureMemo &Memo) {
  Memo.insert(11, DbmBackend::Dense, makePre(3, 100),
              makeBlock(3, 100, /*Feasible=*/true));
  Memo.insert(11, DbmBackend::Dense, makePre(3, 200),
              makeBlock(3, 200, /*Feasible=*/true));
  Memo.insert(22, DbmBackend::MapBased, makePre(4, 300),
              makeBlock(4, 300, /*Feasible=*/false, DbmBackend::MapBased));
}

void expectAdoptedEquals(const ClosureMemo &Memo) {
  EXPECT_EQ(Memo.size(), 3u);
  std::shared_ptr<DbmShared> B1 =
      Memo.lookup(11, DbmBackend::Dense, makePre(3, 100));
  ASSERT_NE(B1, nullptr);
  EXPECT_TRUE(B1->Closed);
  EXPECT_TRUE(B1->EverClosed);
  EXPECT_TRUE(B1->Feasible);
  ASSERT_EQ(B1->M->size(), 3u);
  EXPECT_EQ(B1->M->get(0, 0), 0);
  EXPECT_EQ(B1->M->get(1, 2), 100 + 1 * 3 + 2);

  std::shared_ptr<DbmShared> B2 =
      Memo.lookup(11, DbmBackend::Dense, makePre(3, 200));
  ASSERT_NE(B2, nullptr);
  EXPECT_EQ(B2->M->get(2, 1), 200 + 2 * 3 + 1);

  std::shared_ptr<DbmShared> B3 =
      Memo.lookup(22, DbmBackend::MapBased, makePre(4, 300));
  ASSERT_NE(B3, nullptr);
  EXPECT_FALSE(B3->Feasible);
  ASSERT_EQ(B3->M->size(), 4u);
  EXPECT_EQ(B3->M->get(3, 0), 300 + 3 * 4 + 0);
}

TEST(MemoSnapshotTest, SerializeAdoptRoundTrip) {
  ClosureMemo Memo(/*CrossSession=*/true);
  fillMemo(Memo);
  MemoSnapshotStats SaveStats;
  std::string Bytes = serializeClosureMemo(Memo, "salt-a", SaveStats);
  EXPECT_EQ(SaveStats.Saved, 3u);

  ClosureMemo Fresh(/*CrossSession=*/true);
  MemoSnapshotStats AdoptStats;
  ASSERT_TRUE(adoptClosureMemo(Bytes, "salt-a", Fresh, AdoptStats));
  EXPECT_EQ(AdoptStats.Adopted, 3u);
  EXPECT_EQ(AdoptStats.Rejected, 0u);
  expectAdoptedEquals(Fresh);
}

TEST(MemoSnapshotTest, EmptyMemoRoundTrips) {
  ClosureMemo Empty(/*CrossSession=*/true);
  MemoSnapshotStats Stats;
  std::string Bytes = serializeClosureMemo(Empty, "s", Stats);
  ClosureMemo Fresh(/*CrossSession=*/true);
  EXPECT_TRUE(adoptClosureMemo(Bytes, "s", Fresh, Stats));
  EXPECT_EQ(Fresh.size(), 0u);
}

TEST(MemoSnapshotTest, SaltMismatchRejectsEverything) {
  ClosureMemo Memo(/*CrossSession=*/true);
  fillMemo(Memo);
  MemoSnapshotStats Stats;
  std::string Bytes = serializeClosureMemo(Memo, "build-0.7.0", Stats);

  ClosureMemo Fresh(/*CrossSession=*/true);
  MemoSnapshotStats AdoptStats;
  EXPECT_FALSE(adoptClosureMemo(Bytes, "build-0.8.0", Fresh, AdoptStats));
  EXPECT_EQ(AdoptStats.Rejected, 1u);
  EXPECT_EQ(AdoptStats.Adopted, 0u);
  EXPECT_EQ(Fresh.size(), 0u);
}

TEST(MemoSnapshotTest, TruncationRejectsWholeFileNothingInserted) {
  ClosureMemo Memo(/*CrossSession=*/true);
  fillMemo(Memo);
  MemoSnapshotStats Stats;
  std::string Bytes = serializeClosureMemo(Memo, "s", Stats);

  // Every proper prefix must reject in full — never adopt the entries
  // that happened to decode before the cliff.
  for (std::size_t Cut : {Bytes.size() - 1, Bytes.size() / 2,
                          Bytes.size() / 4, std::size_t(5)}) {
    ClosureMemo Fresh(/*CrossSession=*/true);
    MemoSnapshotStats AdoptStats;
    EXPECT_FALSE(
        adoptClosureMemo(Bytes.substr(0, Cut), "s", Fresh, AdoptStats))
        << "cut at " << Cut;
    EXPECT_EQ(Fresh.size(), 0u) << "cut at " << Cut;
  }
}

TEST(MemoSnapshotTest, BitFlipRejects) {
  ClosureMemo Memo(/*CrossSession=*/true);
  fillMemo(Memo);
  MemoSnapshotStats Stats;
  std::string Bytes = serializeClosureMemo(Memo, "s", Stats);

  // The frame checksums key + payload, so any payload flip fails the
  // frame check before the decoder even runs.
  for (std::size_t Pos : {Bytes.size() / 3, Bytes.size() - 2}) {
    std::string Bad = Bytes;
    Bad[Pos] = static_cast<char>(Bad[Pos] ^ 0x40);
    ClosureMemo Fresh(/*CrossSession=*/true);
    MemoSnapshotStats AdoptStats;
    EXPECT_FALSE(adoptClosureMemo(Bad, "s", Fresh, AdoptStats))
        << "flip at " << Pos;
    EXPECT_EQ(Fresh.size(), 0u);
  }
}

TEST(MemoSnapshotTest, TrailingGarbageRejects) {
  // Garbage inside the frame's payload (the frame records its own
  // lengths, so bytes appended after a valid record also fail).
  ClosureMemo Memo(/*CrossSession=*/true);
  fillMemo(Memo);
  MemoSnapshotStats Stats;
  std::string Bytes = serializeClosureMemo(Memo, "s", Stats) + "extra";
  ClosureMemo Fresh(/*CrossSession=*/true);
  MemoSnapshotStats AdoptStats;
  EXPECT_FALSE(adoptClosureMemo(Bytes, "s", Fresh, AdoptStats));
  EXPECT_EQ(Fresh.size(), 0u);
}

TEST(MemoSnapshotTest, GarbageBytesReject) {
  ClosureMemo Fresh(/*CrossSession=*/true);
  MemoSnapshotStats Stats;
  EXPECT_FALSE(adoptClosureMemo("not a snapshot", "s", Fresh, Stats));
  EXPECT_FALSE(adoptClosureMemo("", "s", Fresh, Stats));
  EXPECT_EQ(Fresh.size(), 0u);
  EXPECT_EQ(Stats.Rejected, 2u);
}

TEST(MemoSnapshotTest, SaveLoadRoundTripOnDisk) {
  fs::path Dir = fs::temp_directory_path() /
                 ("csdf-memosnap-" + std::to_string(::getpid()));
  fs::remove_all(Dir);

  ClosureMemo Memo(/*CrossSession=*/true);
  fillMemo(Memo);
  MemoSnapshotStats SaveStats;
  std::string Error;
  ASSERT_TRUE(
      saveMemoSnapshot(Dir.string(), "v", Memo, SaveStats, Error))
      << Error;
  EXPECT_EQ(SaveStats.Saved, 3u);
  EXPECT_TRUE(fs::exists(Dir / "closure-memo.snap"));

  ClosureMemo Fresh(/*CrossSession=*/true);
  MemoSnapshotStats LoadStats;
  EXPECT_TRUE(loadMemoSnapshot(Dir.string(), "v", Fresh, LoadStats));
  EXPECT_EQ(LoadStats.Adopted, 3u);
  expectAdoptedEquals(Fresh);

  fs::remove_all(Dir);
}

TEST(MemoSnapshotTest, MissingFileIsNotAnError) {
  fs::path Dir = fs::temp_directory_path() /
                 ("csdf-memosnap-missing-" + std::to_string(::getpid()));
  fs::remove_all(Dir);
  ClosureMemo Fresh(/*CrossSession=*/true);
  MemoSnapshotStats Stats;
  EXPECT_TRUE(loadMemoSnapshot(Dir.string(), "v", Fresh, Stats));
  EXPECT_EQ(Stats.Adopted, 0u);
  EXPECT_EQ(Stats.Rejected, 0u);
}

TEST(MemoSnapshotTest, CorruptFileIsQuarantined) {
  fs::path Dir = fs::temp_directory_path() /
                 ("csdf-memosnap-quar-" + std::to_string(::getpid()));
  fs::remove_all(Dir);
  fs::create_directories(Dir);
  {
    std::ofstream Out(Dir / "closure-memo.snap", std::ios::binary);
    Out << "garbage that is definitely not a framed record";
  }

  ClosureMemo Fresh(/*CrossSession=*/true);
  MemoSnapshotStats Stats;
  EXPECT_FALSE(loadMemoSnapshot(Dir.string(), "v", Fresh, Stats));
  EXPECT_EQ(Stats.Rejected, 1u);
  EXPECT_EQ(Stats.Quarantined, 1u);
  EXPECT_EQ(Fresh.size(), 0u);
  // The corrupt bytes moved aside: a subsequent boot is a clean first
  // boot, not a rejection loop.
  EXPECT_FALSE(fs::exists(Dir / "closure-memo.snap"));
  EXPECT_TRUE(fs::exists(Dir / "quarantine" / "closure-memo.snap"));
  ClosureMemo Again(/*CrossSession=*/true);
  MemoSnapshotStats AgainStats;
  EXPECT_TRUE(loadMemoSnapshot(Dir.string(), "v", Again, AgainStats));

  fs::remove_all(Dir);
}

TEST(MemoSnapshotTest, StaleSaltOnDiskIsQuarantined) {
  fs::path Dir = fs::temp_directory_path() /
                 ("csdf-memosnap-salt-" + std::to_string(::getpid()));
  fs::remove_all(Dir);

  ClosureMemo Memo(/*CrossSession=*/true);
  fillMemo(Memo);
  MemoSnapshotStats SaveStats;
  std::string Error;
  ASSERT_TRUE(
      saveMemoSnapshot(Dir.string(), "old-build", Memo, SaveStats, Error));

  // The "upgraded" daemon opens the same dir with its own salt: the old
  // snapshot must be quarantined, never adopted.
  ClosureMemo Fresh(/*CrossSession=*/true);
  MemoSnapshotStats Stats;
  EXPECT_FALSE(loadMemoSnapshot(Dir.string(), "new-build", Fresh, Stats));
  EXPECT_EQ(Stats.Quarantined, 1u);
  EXPECT_EQ(Fresh.size(), 0u);
  EXPECT_TRUE(fs::exists(Dir / "quarantine" / "closure-memo.snap"));

  fs::remove_all(Dir);
}

TEST(MemoSnapshotTest, SaveOverwritesAtomically) {
  fs::path Dir = fs::temp_directory_path() /
                 ("csdf-memosnap-over-" + std::to_string(::getpid()));
  fs::remove_all(Dir);

  ClosureMemo First(/*CrossSession=*/true);
  First.insert(1, DbmBackend::Dense, makePre(2, 10),
               makeBlock(2, 10, true));
  MemoSnapshotStats Stats;
  std::string Error;
  ASSERT_TRUE(saveMemoSnapshot(Dir.string(), "v", First, Stats, Error));

  ClosureMemo Second(/*CrossSession=*/true);
  fillMemo(Second);
  ASSERT_TRUE(saveMemoSnapshot(Dir.string(), "v", Second, Stats, Error));

  // No temp litter left behind, and the newest snapshot wins.
  unsigned Files = 0;
  for (const auto &Ent : fs::directory_iterator(Dir))
    if (Ent.is_regular_file())
      ++Files;
  EXPECT_EQ(Files, 1u);
  ClosureMemo Fresh(/*CrossSession=*/true);
  MemoSnapshotStats LoadStats;
  EXPECT_TRUE(loadMemoSnapshot(Dir.string(), "v", Fresh, LoadStats));
  EXPECT_EQ(Fresh.size(), 3u);

  fs::remove_all(Dir);
}

} // namespace
