//===- tests/api/WireTest.cpp ---------------------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The shared wire codec: envelope shape, protocol versioning, structured
// errors, request round-trips, and the randomized canonicalization
// property — optionsToJson -> optionsFromJson -> fingerprint() is the
// identity for arbitrary RequestOptions, which is what makes a forwarded
// request hit the exact cache entry a direct one would.
//
//===----------------------------------------------------------------------===//

#include "api/Wire.h"

#include "support/Json.h"
#include "support/Version.h"

#include "gtest/gtest.h"

#include <random>

using namespace csdf;
using namespace csdf::api;

namespace {

WireRequest parseOk(const std::string &Line) {
  WireRequest Req;
  std::string ErrorLine;
  EXPECT_TRUE(parseWireRequest(Line, 1 << 20, RequestOptions(), Req,
                               ErrorLine))
      << ErrorLine;
  return Req;
}

/// The error line parsed back, so assertions read its structured fields
/// instead of substring-matching.
JsonValue parseFail(const std::string &Line) {
  WireRequest Req;
  std::string ErrorLine;
  EXPECT_FALSE(
      parseWireRequest(Line, 1 << 20, RequestOptions(), Req, ErrorLine));
  JsonValue V;
  std::string Error;
  EXPECT_TRUE(parseJson(ErrorLine, V, Error)) << ErrorLine;
  return V;
}

TEST(WireTest, ResponseHeadCarriesIdentityMembersFirst) {
  std::string Head = wireResponseHead("7");
  EXPECT_EQ(Head, "{\"id\":7,\"proto\":" + std::to_string(WireProtoVersion) +
                      ",\"tool_version\":\"" + toolVersion() + "\"");
}

TEST(WireTest, ErrorEnvelopeIsStructured) {
  JsonValue V;
  std::string Error;
  ASSERT_TRUE(parseJson(
      wireError("3", "io-error", "no such file", /*Retryable=*/false), V,
      Error));
  EXPECT_EQ(V.get("id")->asInt(), 3);
  EXPECT_EQ(V.get("proto")->asInt(), WireProtoVersion);
  EXPECT_EQ(V.get("tool_version")->asString(), toolVersion());
  EXPECT_FALSE(V.get("ok")->asBool());
  EXPECT_EQ(V.get("code")->asString(), "io-error");
  EXPECT_FALSE(V.get("retryable")->asBool());
  EXPECT_EQ(V.get("retry_after_ms"), nullptr);
}

TEST(WireTest, OverloadedIsRetryableWithHint) {
  JsonValue V;
  std::string Error;
  ASSERT_TRUE(parseJson(wireOverloaded(75), V, Error));
  EXPECT_EQ(V.get("code")->asString(), "overloaded");
  EXPECT_TRUE(V.get("retryable")->asBool());
  EXPECT_EQ(V.get("retry_after_ms")->asInt(), 75);
}

TEST(WireTest, ParsesFullEnvelope) {
  WireRequest Req = parseOk(
      "{\"id\":9,\"proto\":1,\"type\":\"analyze\",\"path\":\"a.mpl\","
      "\"source\":\"proc p in 0..np-1 { }\",\"tenant\":\"ci\"}");
  EXPECT_EQ(Req.IdJson, "9");
  EXPECT_EQ(Req.Proto, WireProtoVersion);
  EXPECT_EQ(Req.Type, "analyze");
  EXPECT_EQ(Req.Path, "a.mpl");
  ASSERT_TRUE(Req.Source.has_value());
  EXPECT_EQ(Req.Tenant, "ci");
}

TEST(WireTest, AbsentProtoMeansCurrent) {
  WireRequest Req = parseOk("{\"type\":\"stats\"}");
  EXPECT_EQ(Req.Proto, WireProtoVersion);
}

TEST(WireTest, ProtoMismatchIsStructuredAndNotRetryable) {
  JsonValue V = parseFail("{\"id\":4,\"proto\":99,\"type\":\"stats\"}");
  EXPECT_EQ(V.get("code")->asString(), "proto-mismatch");
  EXPECT_FALSE(V.get("retryable")->asBool());
  EXPECT_EQ(V.get("id")->asInt(), 4); // validated after id, so it echoes
}

TEST(WireTest, ProtoMustBeAnInteger) {
  JsonValue V = parseFail("{\"proto\":\"one\",\"type\":\"stats\"}");
  EXPECT_EQ(V.get("code")->asString(), "invalid-request");
}

TEST(WireTest, OversizedLineIsParseError) {
  WireRequest Req;
  std::string ErrorLine;
  std::string Big(2048, 'x');
  EXPECT_FALSE(
      parseWireRequest(Big, 1024, RequestOptions(), Req, ErrorLine));
  JsonValue V;
  std::string Error;
  ASSERT_TRUE(parseJson(ErrorLine, V, Error));
  EXPECT_EQ(V.get("code")->asString(), "parse-error");
}

TEST(WireTest, UnknownMemberRejected) {
  JsonValue V = parseFail("{\"type\":\"stats\",\"shard\":\"x\"}");
  EXPECT_EQ(V.get("code")->asString(), "invalid-request");
}

TEST(WireTest, TenantMustBeString) {
  JsonValue V = parseFail("{\"type\":\"stats\",\"tenant\":3}");
  EXPECT_EQ(V.get("code")->asString(), "invalid-request");
}

TEST(WireTest, RequestJsonRoundTrips) {
  WireRequest Req;
  Req.IdJson = "42";
  Req.Type = "lint";
  Req.Path = "dir/x.mpl";
  Req.Source = "proc p in 0..np-1 { }";
  Req.Tenant = "editor";
  Req.Werror = true;
  Req.MinSeverity = DiagSeverity::Warning;
  Req.Disabled = {"dead-store"};
  Req.Options.Client = "linear";
  Req.Options.DeadlineMs = 250;

  WireRequest Back = parseOk(wireRequestJson(Req, /*IncludeOptions=*/true));
  EXPECT_EQ(Back.IdJson, "42");
  EXPECT_EQ(Back.Type, "lint");
  EXPECT_EQ(Back.Path, "dir/x.mpl");
  EXPECT_EQ(Back.Source, Req.Source);
  EXPECT_EQ(Back.Tenant, "editor");
  EXPECT_TRUE(Back.Werror);
  EXPECT_EQ(Back.MinSeverity, DiagSeverity::Warning);
  EXPECT_EQ(Back.Disabled, Req.Disabled);
  EXPECT_EQ(Back.Options.fingerprint(), Req.Options.fingerprint());
}

TEST(WireTest, RoutingKeyTracksShardCacheKey) {
  WireRequest A = parseOk(
      "{\"type\":\"analyze\",\"path\":\"a.mpl\",\"source\":\"proc p in "
      "0..np-1 { }\"}");
  WireRequest B = A;
  EXPECT_EQ(wireRoutingKey(A), wireRoutingKey(B));
  B.Source = "proc p in 0..np-1 { barrier; }";
  EXPECT_NE(wireRoutingKey(A), wireRoutingKey(B));
  B = A;
  B.Options.FixedNp = 4;
  EXPECT_NE(wireRoutingKey(A), wireRoutingKey(B));
  // Tenant is an admission concern, not a placement one: the same work
  // from two tenants must share one shard cache entry.
  B = A;
  B.Tenant = "other";
  EXPECT_EQ(wireRoutingKey(A), wireRoutingKey(B));
}

/// Every field randomized, including the budget knobs and
/// check_match_nondet — the canonicalization property that keeps client,
/// router, and shard agreeing on cache identity.
TEST(WireTest, RandomizedOptionsRoundTripFingerprintIdentity) {
  std::mt19937_64 Rng(20260809);
  const char *Clients[] = {"linear", "cartesian", "sectionx"};
  for (int Iter = 0; Iter < 500; ++Iter) {
    RequestOptions O;
    O.Client = Clients[Rng() % 3];
    O.FixedNp = static_cast<std::int64_t>(Rng() % 64);
    O.Threads = 1 + static_cast<unsigned>(Rng() % 8);
    O.MaxStates = static_cast<unsigned>(Rng() % 100000);
    O.DeadlineMs = Rng() % 5000;
    O.MaxMemoryMb = Rng() % 4096;
    O.ProverSteps = Rng() % 100000;
    O.CheckMatchNondet = (Rng() & 1) != 0;
    O.TestHooks = (Rng() & 1) != 0;
    unsigned NParams = static_cast<unsigned>(Rng() % 4);
    for (unsigned P = 0; P < NParams; ++P) {
      std::string Name = "p";
      Name += std::to_string(Rng() % 10);
      O.Params[Name] = static_cast<std::int64_t>(Rng() % 1000) - 500;
    }

    std::string Json = optionsToJson(O);
    RequestOptions Back;
    JsonValue V;
    std::string Error;
    ASSERT_TRUE(parseJson(Json, V, Error)) << Json;
    ASSERT_TRUE(optionsFromJson(V, Back, Error)) << Json << ": " << Error;
    EXPECT_EQ(Back.fingerprint(), O.fingerprint()) << Json;

    // And through the full request envelope, as the client sends it.
    WireRequest Req;
    Req.Type = "analyze";
    Req.Path = "r.mpl";
    Req.Source = "proc p in 0..np-1 { }";
    Req.Options = O;
    WireRequest Parsed =
        parseOk(wireRequestJson(Req, /*IncludeOptions=*/true));
    EXPECT_EQ(Parsed.Options.fingerprint(), O.fingerprint());
    EXPECT_EQ(wireRoutingKey(Parsed), wireRoutingKey(Req));
  }
}

/// Param names with JSON metacharacters survive the round trip (this
/// was a real bug: optionsToJson emitted names unescaped).
TEST(WireTest, ParamNamesAreEscaped) {
  RequestOptions O;
  O.Params["we\"ird\\name"] = 7;
  std::string Json = optionsToJson(O);
  RequestOptions Back;
  JsonValue V;
  std::string Error;
  ASSERT_TRUE(parseJson(Json, V, Error)) << Json;
  ASSERT_TRUE(optionsFromJson(V, Back, Error)) << Error;
  EXPECT_EQ(Back.fingerprint(), O.fingerprint());
  EXPECT_EQ(Back.Params, O.Params);
}

} // namespace
