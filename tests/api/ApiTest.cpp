//===- tests/api/ApiTest.cpp - stable facade tests -------------------------===//
//
// api::RequestOptions (the one option bag every front end shares: CLI
// spelling, JSON spelling, cache-key fingerprint) and api::Analyzer (the
// one construction path for analyze/lint/batch). The per-file verdict JSON
// must be the same schema everywhere, so `csdf analyze --format json`,
// `csdf batch --report` and `csdf serve` results stay interchangeable.
//
//===----------------------------------------------------------------------===//

#include "api/Csdf.h"
#include "driver/Batch.h"
#include "support/Version.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <regex>
#include <unistd.h>

using namespace csdf;
namespace fs = std::filesystem;

namespace {

const char *CleanSource = "if id == 0 then\n"
                          "  x = 42;\n"
                          "  send x -> 1;\n"
                          "elif id == 1 then\n"
                          "  recv y <- 0;\n"
                          "  print y;\n"
                          "end\n";

const char *LeakSource = "if id == 0 then\n"
                         "  x = 1;\n"
                         "  send x -> 1;\n"
                         "  send x -> 1;\n"
                         "elif id == 1 then\n"
                         "  recv y <- 0;\n"
                         "end\n";

struct TempDir {
  fs::path Dir;
  TempDir() {
    Dir = fs::temp_directory_path() /
          ("csdf-api-test-" + std::to_string(::getpid()));
    fs::create_directories(Dir);
  }
  ~TempDir() {
    std::error_code Ec;
    fs::remove_all(Dir, Ec);
  }
  std::string add(const std::string &Name, const std::string &Source) {
    fs::path P = Dir / Name;
    std::ofstream(P) << Source;
    return P.string();
  }
};

//===--------------------------------------------------------------------===//
// Shared option parsing
//===--------------------------------------------------------------------===//

TEST(RequestOptionsTest, SharedFlagsParseEverywhereTheSame) {
  const char *Argv[] = {"--client",        "linear", "--fixed-np", "6",
                        "--param",         "rows=3", "--threads",  "2",
                        "--max-states",    "500",    "--deadline-ms", "250",
                        "--max-memory-mb", "64",     "--prover-steps", "9000",
                        "--test-hooks",    "--no-match-nondet"};
  int Argc = static_cast<int>(std::size(Argv));
  api::RequestOptions Opts;
  std::string Error;
  for (int I = 0; I < Argc; ++I)
    ASSERT_EQ(api::parseSharedOption(Argc, Argv, I, Opts, Error),
              api::ArgStatus::Consumed)
        << Argv[I] << ": " << Error;

  EXPECT_EQ(Opts.Client, "linear");
  EXPECT_EQ(Opts.FixedNp, 6);
  EXPECT_EQ(Opts.Params.at("rows"), 3);
  EXPECT_EQ(Opts.Threads, 2u);
  EXPECT_EQ(Opts.MaxStates, 500u);
  EXPECT_EQ(Opts.DeadlineMs, 250u);
  EXPECT_EQ(Opts.MaxMemoryMb, 64u);
  EXPECT_EQ(Opts.ProverSteps, 9000u);
  EXPECT_TRUE(Opts.TestHooks);
  EXPECT_FALSE(Opts.CheckMatchNondet);

  // The resolved engine/session options reflect the overrides.
  AnalysisOptions An = Opts.analysis();
  EXPECT_FALSE(An.CheckMatchNondet);
  EXPECT_EQ(An.FixedNp, 6);
  EXPECT_EQ(An.Threads, 2u);
  EXPECT_EQ(An.MaxStates, 500u);
  EXPECT_EQ(An.Params.at("rows"), 3);
  SessionOptions S = Opts.session();
  EXPECT_EQ(S.DeadlineMs, 250u);
  EXPECT_EQ(S.MaxMemoryMb, 64u);
  EXPECT_EQ(S.MaxProverSteps, 9000u);
  EXPECT_TRUE(S.EnableTestHooks);
}

TEST(RequestOptionsTest, BadSharedFlagValuesFailLoudly) {
  auto Try = [](std::vector<const char *> Argv) {
    api::RequestOptions Opts;
    std::string Error;
    int I = 0;
    api::ArgStatus St = api::parseSharedOption(
        static_cast<int>(Argv.size()), Argv.data(), I, Opts, Error);
    if (St == api::ArgStatus::Error)
      EXPECT_FALSE(Error.empty());
    return St;
  };
  EXPECT_EQ(Try({"--client", "bogus"}), api::ArgStatus::Error);
  EXPECT_EQ(Try({"--client"}), api::ArgStatus::Error); // missing value
  EXPECT_EQ(Try({"--fixed-np", "0"}), api::ArgStatus::Error);
  EXPECT_EQ(Try({"--fixed-np", "-3"}), api::ArgStatus::Error);
  EXPECT_EQ(Try({"--param", "noequals"}), api::ArgStatus::Error);
  EXPECT_EQ(Try({"--param", "=5"}), api::ArgStatus::Error);
  EXPECT_EQ(Try({"--threads", "0"}), api::ArgStatus::Error);
  EXPECT_EQ(Try({"--threads", "4096"}), api::ArgStatus::Error);
  EXPECT_EQ(Try({"--max-states", "x"}), api::ArgStatus::Error);
  EXPECT_EQ(Try({"--deadline-ms", "-1"}), api::ArgStatus::Error);
  // Non-shared flags are left for the caller's own table.
  EXPECT_EQ(Try({"--np", "8"}), api::ArgStatus::NotMine);
  EXPECT_EQ(Try({"--format", "json"}), api::ArgStatus::NotMine);
}

TEST(RequestOptionsTest, JsonSpellingMatchesFlagSpelling) {
  JsonValue Json;
  std::string Error;
  ASSERT_TRUE(parseJson("{\"client\": \"sectionx\", \"fixed_np\": 4, "
                        "\"params\": {\"rows\": 2}, \"threads\": 3, "
                        "\"max_states\": 10, \"deadline_ms\": 100, "
                        "\"max_memory_mb\": 32, \"prover_steps\": 7, "
                        "\"test_hooks\": true, "
                        "\"check_match_nondet\": false}",
                        Json, Error))
      << Error;
  api::RequestOptions Opts;
  ASSERT_TRUE(api::optionsFromJson(Json, Opts, Error)) << Error;
  EXPECT_EQ(Opts.Client, "sectionx");
  EXPECT_EQ(Opts.FixedNp, 4);
  EXPECT_EQ(Opts.Params.at("rows"), 2);
  EXPECT_EQ(Opts.Threads, 3u);
  EXPECT_EQ(Opts.MaxStates, 10u);
  EXPECT_EQ(Opts.DeadlineMs, 100u);
  EXPECT_EQ(Opts.MaxMemoryMb, 32u);
  EXPECT_EQ(Opts.ProverSteps, 7u);
  EXPECT_TRUE(Opts.TestHooks);
  EXPECT_FALSE(Opts.CheckMatchNondet);

  // Typos and type mismatches are rejected, not silently defaulted.
  auto Fails = [](const char *Text) {
    JsonValue V;
    std::string E;
    EXPECT_TRUE(parseJson(Text, V, E)) << E;
    api::RequestOptions O;
    bool Ok = api::optionsFromJson(V, O, E);
    EXPECT_FALSE(Ok) << Text;
    EXPECT_FALSE(E.empty());
  };
  Fails("{\"deadline\": 5}");            // unknown member
  Fails("{\"client\": \"zap\"}");        // unknown preset
  Fails("{\"threads\": \"two\"}");       // type mismatch
  Fails("{\"fixed_np\": 0}");            // out of range
  Fails("{\"check_match_nondet\": 3}");  // not a bool
  Fails("{\"params\": {\"rows\": \"x\"}}");
  Fails("[1]");                          // not an object
}

TEST(RequestOptionsTest, OptionsToJsonRoundTripsThroughFromJson) {
  // The third spelling (`csdf client` request bodies) must round-trip:
  // optionsToJson -> optionsFromJson lands on an identical fingerprint,
  // for defaults and for a fully non-default bag.
  auto RoundTrips = [](const api::RequestOptions &Opts) {
    std::string Text = api::optionsToJson(Opts);
    JsonValue Json;
    std::string Error;
    ASSERT_TRUE(parseJson(Text, Json, Error)) << Text << ": " << Error;
    api::RequestOptions Back;
    ASSERT_TRUE(api::optionsFromJson(Json, Back, Error)) << Text << ": "
                                                         << Error;
    EXPECT_EQ(Back.fingerprint(), Opts.fingerprint()) << Text;
    EXPECT_EQ(Back.Threads, Opts.Threads) << Text;
  };
  RoundTrips(api::RequestOptions());

  api::RequestOptions Full;
  Full.Client = "sectionx";
  Full.FixedNp = 4;
  Full.Params["rows"] = 2;
  Full.Params["cols"] = 3;
  Full.Threads = 3;
  Full.MaxStates = 10;
  Full.DeadlineMs = 100;
  Full.MaxMemoryMb = 32;
  Full.ProverSteps = 7;
  Full.TestHooks = true;
  Full.CheckMatchNondet = false;
  RoundTrips(Full);
}

//===--------------------------------------------------------------------===//
// Fingerprint (the cache key's option half)
//===--------------------------------------------------------------------===//

TEST(RequestOptionsTest, FingerprintSeparatesSemanticallyDifferentRequests) {
  api::RequestOptions Base;
  std::string F = Base.fingerprint();
  EXPECT_EQ(F, api::RequestOptions().fingerprint()) << "must be stable";

  auto Differs = [&](void (*Mutate)(api::RequestOptions &)) {
    api::RequestOptions O;
    Mutate(O);
    EXPECT_NE(O.fingerprint(), F);
  };
  Differs([](api::RequestOptions &O) { O.Client = "linear"; });
  Differs([](api::RequestOptions &O) { O.FixedNp = 9; });
  Differs([](api::RequestOptions &O) { O.Params["rows"] = 2; });
  Differs([](api::RequestOptions &O) { O.MaxStates = 5; });
  Differs([](api::RequestOptions &O) { O.DeadlineMs = 50; });
  Differs([](api::RequestOptions &O) { O.MaxMemoryMb = 64; });
  Differs([](api::RequestOptions &O) { O.ProverSteps = 10; });
  Differs([](api::RequestOptions &O) { O.TestHooks = true; });
  // Detector toggles must key the serve cache: a cached result computed
  // with the check on would otherwise be replayed after it is turned off.
  Differs([](api::RequestOptions &O) { O.CheckMatchNondet = false; });

  // Threads is excluded by design: results are bit-identical at any
  // worker count, so a cache hit across thread counts is correct.
  api::RequestOptions Threaded;
  Threaded.Threads = 8;
  EXPECT_EQ(Threaded.fingerprint(), F);
}

//===--------------------------------------------------------------------===//
// Analyzer.analyze
//===--------------------------------------------------------------------===//

TEST(AnalyzerTest, InlineSourceCompletesWithExitZero) {
  api::Analyzer An;
  api::AnalyzeRequest Req;
  Req.Path = "buffer.mpl";
  Req.Source = CleanSource;
  Req.Options.Client = "linear";
  api::AnalyzeResponse R = An.analyze(Req);
  EXPECT_EQ(R.exitCode(), SessionExitComplete);
  EXPECT_TRUE(R.outcome().complete());
  EXPECT_FALSE(R.degraded());
  ASSERT_NE(R.Session.Graph, nullptr);
  EXPECT_EQ(R.Session.Report.Analysis.matchedNodePairs().size(), 1u);
}

TEST(AnalyzerTest, MissingFileAndEmptyBufferAreUsageErrors) {
  api::Analyzer An;
  api::AnalyzeRequest Req;
  Req.Path = "/nonexistent/never.mpl";
  api::AnalyzeResponse R = An.analyze(Req);
  EXPECT_EQ(R.exitCode(), SessionExitUsage);
  EXPECT_NE(R.Session.Error.find("cannot read"), std::string::npos);

  Req.Path = "buf.mpl";
  Req.Source = "";
  R = An.analyze(Req);
  EXPECT_EQ(R.exitCode(), SessionExitUsage);
  EXPECT_NE(R.Session.Error.find("is empty"), std::string::npos);
}

TEST(AnalyzerTest, StateBudgetTripsDeterministically) {
  // --max-states is the deterministic budget trip (unlike a deadline, its
  // reason text carries no timing), which is what serve's cache tests and
  // the golden corpus rely on.
  api::Analyzer An;
  api::AnalyzeRequest Req;
  Req.Path = "tripped.mpl";
  Req.Source = CleanSource;
  Req.Options.MaxStates = 1;
  api::AnalyzeResponse R = An.analyze(Req);
  EXPECT_TRUE(R.degraded());
  EXPECT_EQ(R.outcome().str(), "degraded-to-top(states)");
  EXPECT_EQ(R.outcome().Reason, "state budget exceeded");
}

TEST(AnalyzerTest, WarmAndColdAnalyzersAgreeOnVerdicts) {
  // Warm state (shared symbols + cross-session memo) is an optimization,
  // never a semantic change: repeated and mixed requests must produce the
  // same verdict JSON a cold run produces, byte for byte (modulo wall
  // time).
  auto Normalize = [](std::string S) {
    return std::regex_replace(S, std::regex("\"wall_ms\": \\d+"),
                              "\"wall_ms\": 0");
  };
  api::Analyzer Warm(api::AnalyzerConfig::warm());
  const char *Sources[] = {CleanSource, LeakSource, CleanSource, LeakSource};
  for (const char *Source : Sources) {
    api::AnalyzeRequest Req;
    Req.Path = "w.mpl";
    Req.Source = Source;
    api::AnalyzeResponse WarmR = Warm.analyze(Req);
    api::Analyzer Cold;
    api::AnalyzeResponse ColdR = Cold.analyze(Req);
    EXPECT_EQ(Normalize(api::verdictJson(Req.Path, WarmR)),
              Normalize(api::verdictJson(Req.Path, ColdR)));
  }
}

//===--------------------------------------------------------------------===//
// One verdict schema across surfaces
//===--------------------------------------------------------------------===//

#ifndef _WIN32

TEST(AnalyzerTest, VerdictJsonMatchesBatchReportRow) {
  // `csdf analyze --format json` output for a file is the corresponding
  // `csdf batch --report` entry plus the identity suffix (tool_version,
  // options_fingerprint), modulo the volatile measurement fields.
  TempDir Dir;
  std::string Clean = Dir.add("clean.mpl", CleanSource);
  std::string Leak = Dir.add("leak.mpl", LeakSource);

  api::Analyzer An;
  api::BatchRequest BReq;
  BReq.Files = {Clean, Leak};
  BReq.Mode = BatchMode::Fork;
  BatchReport Report = An.runBatch(BReq);
  ASSERT_EQ(Report.Entries.size(), 2u);

  auto Normalize = [](std::string S) {
    S = std::regex_replace(S, std::regex("\"wall_ms\": \\d+"),
                           "\"wall_ms\": 0");
    return std::regex_replace(S, std::regex("\"peak_rss_kb\": \\d+"),
                              "\"peak_rss_kb\": 0");
  };
  for (size_t I = 0; I < BReq.Files.size(); ++I) {
    api::AnalyzeRequest Req;
    Req.Path = BReq.Files[I];
    api::AnalyzeResponse R = An.analyze(Req);
    std::string Row = batchEntryJson(Report.Entries[I]);
    std::string Expected =
        Row.substr(0, Row.size() - 1) + ", \"tool_version\": \"" +
        std::string(toolVersion()) + "\", \"options_fingerprint\": \"" +
        Req.Options.fingerprint() + "\"}";
    EXPECT_EQ(Normalize(api::verdictJson(Req.Path, R)), Normalize(Expected))
        << BReq.Files[I];
  }
}

#endif // !_WIN32

//===--------------------------------------------------------------------===//
// Analyzer.lint
//===--------------------------------------------------------------------===//

TEST(AnalyzerTest, LintReportsFiltersAndPromotes) {
  api::Analyzer An;
  api::LintRequest Req;
  Req.Path = "lint.mpl";
  Req.Source = "x = 1;\nx = 2;\nprint x;\n"; // first store is dead

  api::LintResponse R = An.lint(Req);
  EXPECT_EQ(R.ExitCode, 1);
  ASSERT_FALSE(R.Diagnostics.empty());
  bool SawDeadStore = false;
  for (const Diagnostic &D : R.Diagnostics)
    if (D.Pass == "dead-store") {
      SawDeadStore = true;
      EXPECT_EQ(D.Sev, DiagSeverity::Warning);
    }
  EXPECT_TRUE(SawDeadStore);

  // --Werror promotes the warning.
  Req.Werror = true;
  R = An.lint(Req);
  for (const Diagnostic &D : R.Diagnostics)
    if (D.Pass == "dead-store")
      EXPECT_EQ(D.Sev, DiagSeverity::Error);

  // min-severity=error without promotion drops it; exit goes clean.
  Req.Werror = false;
  Req.MinSeverity = DiagSeverity::Error;
  R = An.lint(Req);
  for (const Diagnostic &D : R.Diagnostics)
    EXPECT_NE(D.Pass, "dead-store");
  EXPECT_EQ(R.ExitCode, 0);

  // Disabling the pass suppresses it at the source.
  Req.MinSeverity = DiagSeverity::Note;
  Req.Disabled = {"dead-store"};
  R = An.lint(Req);
  for (const Diagnostic &D : R.Diagnostics)
    EXPECT_NE(D.Pass, "dead-store");
}

TEST(AnalyzerTest, LintMissingFileIsUsageError) {
  api::Analyzer An;
  api::LintRequest Req;
  Req.Path = "/nonexistent/never.mpl";
  api::LintResponse R = An.lint(Req);
  EXPECT_EQ(R.ExitCode, SessionExitUsage);
  EXPECT_NE(R.Error.find("cannot read"), std::string::npos);
  EXPECT_TRUE(R.Diagnostics.empty());
}

} // namespace
