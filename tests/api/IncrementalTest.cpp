//===- tests/api/IncrementalTest.cpp - Incremental ≡ cold, byte for byte ---===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The incremental pipeline's one non-negotiable guarantee: for any edit
// sequence, analyzeIncremental/lintIncremental produce byte-identical
// JSON to a cold one-shot run of the same revision — caching and trace
// seeding change the work, never the verdict. The edit-replay harness
// drives every corpus example through scripted mutations (exact repeat,
// whitespace/comment reformat, revert, appended statements) and diffs the
// rendered verdicts against a fresh Analyzer each time. The unit tests
// pin the cache/seed observables: hit flags, adoption counters, seed
// rejection on variable-set changes, and budget bypass.
//
//===----------------------------------------------------------------------===//

#include "api/Csdf.h"
#include "diag/DiagRenderer.h"
#include "support/Version.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>

using namespace csdf;
namespace fs = std::filesystem;

namespace {

std::string readFileOrDie(const fs::path &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot read " << Path;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// The only legitimately run-dependent byte in a verdict.
std::string scrubWall(std::string S) {
  return std::regex_replace(S, std::regex("\"wall_ms\": \\d+"),
                            "\"wall_ms\": 0");
}

/// Whitespace/comment-only reformat: same canonical AST, different bytes.
std::string reformat(const std::string &Source) {
  std::string Out = "# reformatted revision\n";
  for (char C : Source) {
    if (C == '\n')
      Out += " \n\n";
    else
      Out += C;
  }
  return Out;
}

/// What a cold one-shot `csdf analyze --format json` would print.
std::string coldVerdict(const api::AnalyzeRequest &Req) {
  api::Analyzer Cold;
  return scrubWall(api::verdictJson(Req.Path, Cold.analyze(Req)));
}

/// What a cold one-shot `csdf lint --format json` would print.
std::string coldLint(const api::LintRequest &Req) {
  api::Analyzer Cold;
  api::LintResponse R = Cold.lint(Req);
  return renderDiagsJson(R.Diagnostics, Req.Path);
}

const char *TwoProcs = R"(proc scatter do
  if id == 0 then
    x = 42;
    for i = 1 to np - 1 do
      send x -> i;
    end
  else
    recv y <- 0;
  end
end
proc report do
  if id > 0 then
    print y;
  end
end
call scatter;
call report;
)";

api::AnalyzeRequest request(const std::string &Source,
                            const std::string &Path = "incr.mpl") {
  api::AnalyzeRequest Req;
  Req.Path = Path;
  Req.Source = Source;
  return Req;
}

TEST(IncrementalTest, ExactRepeatIsCacheHit) {
  api::Analyzer An(api::AnalyzerConfig::warm());
  api::AnalyzeRequest Req = request(TwoProcs);

  api::AnalyzeResponse First = An.analyzeIncremental(Req);
  EXPECT_FALSE(First.FromCache);
  api::AnalyzeResponse Second = An.analyzeIncremental(Req);
  EXPECT_TRUE(Second.FromCache);

  EXPECT_EQ(scrubWall(api::verdictJson(Req.Path, First)),
            scrubWall(api::verdictJson(Req.Path, Second)));
  EXPECT_EQ(An.incrementalStats().Requests, 2u);
  EXPECT_EQ(An.incrementalStats().CacheHits, 1u);
}

TEST(IncrementalTest, VerdictCarriesIdentity) {
  api::Analyzer An(api::AnalyzerConfig::warm());
  api::AnalyzeRequest Req = request(TwoProcs);
  std::string Json = api::verdictJson(Req.Path, An.analyzeIncremental(Req));

  EXPECT_NE(Json.find("\"tool_version\": \"" + std::string(toolVersion()) +
                      "\""),
            std::string::npos);
  EXPECT_NE(Json.find("\"options_fingerprint\": \"" +
                      Req.Options.fingerprint() + "\""),
            std::string::npos);
}

TEST(IncrementalTest, WhitespaceEditAdoptsFullTrace) {
  api::Analyzer An(api::AnalyzerConfig::warm());
  An.analyzeIncremental(request(TwoProcs));

  api::AnalyzeRequest Edited = request(reformat(TwoProcs));
  api::AnalyzeResponse R = An.analyzeIncremental(Edited);

  EXPECT_FALSE(R.FromCache);
  EXPECT_TRUE(R.Replay.SeedUsed) << R.Replay.SeedRejectReason;
  EXPECT_GT(R.Replay.TotalSteps, 0u);
  // Same canonical CFG: every worklist step replays verbatim.
  EXPECT_EQ(R.Replay.AdoptedSteps, R.Replay.TotalSteps);
  EXPECT_EQ(scrubWall(api::verdictJson(Edited.Path, R)), coldVerdict(Edited));
}

TEST(IncrementalTest, VarPreservingEditSeeds) {
  api::Analyzer An(api::AnalyzerConfig::warm());
  An.analyzeIncremental(request(TwoProcs));

  std::string Edited = TwoProcs;
  size_t At = Edited.find("print y;");
  ASSERT_NE(At, std::string::npos);
  Edited.replace(At, 8, "y = y + 2;\n    print y;");

  api::AnalyzeRequest Req = request(Edited);
  api::AnalyzeResponse R = An.analyzeIncremental(Req);

  EXPECT_TRUE(R.Replay.SeedUsed) << R.Replay.SeedRejectReason;
  EXPECT_GT(R.Replay.AdoptedSteps, 0u);
  EXPECT_EQ(scrubWall(api::verdictJson(Req.Path, R)), coldVerdict(Req));
  EXPECT_EQ(An.incrementalStats().SeededRuns, 1u);
}

TEST(IncrementalTest, NewVariableRejectsSeed) {
  api::Analyzer An(api::AnalyzerConfig::warm());
  An.analyzeIncremental(request(TwoProcs));

  // A brand-new assigned variable changes the constraint-graph shape; the
  // seed must be rejected wholesale and the run computed cold — with the
  // verdict still matching a from-scratch run.
  std::string Edited = std::string(TwoProcs) + "z = 1;\nprint z;\n";
  api::AnalyzeRequest Req = request(Edited);
  api::AnalyzeResponse R = An.analyzeIncremental(Req);

  EXPECT_FALSE(R.Replay.SeedUsed);
  EXPECT_EQ(R.Replay.SeedRejectReason, "assigned-variable set changed");
  EXPECT_EQ(R.Replay.AdoptedSteps, 0u);
  EXPECT_EQ(scrubWall(api::verdictJson(Req.Path, R)), coldVerdict(Req));
  EXPECT_EQ(An.incrementalStats().LastSeedRejectReason,
            "assigned-variable set changed");
}

TEST(IncrementalTest, BudgetedRequestBypassesCache) {
  api::Analyzer An(api::AnalyzerConfig::warm());
  api::AnalyzeRequest Req = request(TwoProcs);
  Req.Options.DeadlineMs = 60000; // generous: no degradation, still "limited"

  api::AnalyzeResponse First = An.analyzeIncremental(Req);
  api::AnalyzeResponse Second = An.analyzeIncremental(Req);
  EXPECT_FALSE(First.FromCache);
  EXPECT_FALSE(Second.FromCache);
  EXPECT_EQ(An.incrementalStats().CacheHits, 0u);
  EXPECT_EQ(An.incrementalStats().ColdRuns, 2u);
}

TEST(IncrementalTest, OptionsChangeIsMiss) {
  api::Analyzer An(api::AnalyzerConfig::warm());
  api::AnalyzeRequest Cartesian = request(TwoProcs);
  api::AnalyzeRequest Linear = request(TwoProcs);
  Linear.Options.Client = "linear";

  An.analyzeIncremental(Cartesian);
  api::AnalyzeResponse R = An.analyzeIncremental(Linear);
  EXPECT_FALSE(R.FromCache);
  EXPECT_EQ(scrubWall(api::verdictJson(Linear.Path, R)), coldVerdict(Linear));

  // The per-path entry now holds the linear revision; repeating it hits.
  EXPECT_TRUE(An.analyzeIncremental(Linear).FromCache);
}

TEST(IncrementalTest, LintExactRepeatIsCacheHit) {
  api::Analyzer An(api::AnalyzerConfig::warm());
  api::LintRequest Req;
  Req.Path = "incr.mpl";
  Req.Source = std::string(TwoProcs);

  api::LintResponse First = An.lintIncremental(Req);
  EXPECT_FALSE(First.FromCache);
  api::LintResponse Second = An.lintIncremental(Req);
  EXPECT_TRUE(Second.FromCache);
  EXPECT_EQ(renderDiagsJson(First.Diagnostics, Req.Path),
            renderDiagsJson(Second.Diagnostics, Req.Path));
  EXPECT_EQ(First.ExitCode, Second.ExitCode);
}

TEST(IncrementalTest, LintEditMatchesCold) {
  api::Analyzer An(api::AnalyzerConfig::warm());
  api::LintRequest Req;
  Req.Path = "incr.mpl";
  Req.Source = std::string(TwoProcs);
  An.lintIncremental(Req);

  // Introduce a dead store; the incremental diagnostics must match a cold
  // lint of the edited revision exactly.
  Req.Source = std::string(TwoProcs) + "deadv = 7;\n";
  api::LintResponse R = An.lintIncremental(Req);
  EXPECT_FALSE(R.FromCache);
  EXPECT_EQ(renderDiagsJson(R.Diagnostics, Req.Path), coldLint(Req));
  EXPECT_EQ(R.ExitCode, 1); // findings
}

TEST(IncrementalTest, LintKnobsArePartOfTheKey) {
  api::Analyzer An(api::AnalyzerConfig::warm());
  api::LintRequest Req;
  Req.Path = "incr.mpl";
  Req.Source = std::string(TwoProcs) + "deadv = 7;\n";

  api::LintResponse Plain = An.lintIncremental(Req);
  api::LintRequest Filtered = Req;
  Filtered.Disabled.insert("dead-store");
  api::LintResponse R = An.lintIncremental(Filtered);
  EXPECT_FALSE(R.FromCache);
  EXPECT_EQ(renderDiagsJson(R.Diagnostics, Req.Path), coldLint(Filtered));
  EXPECT_NE(renderDiagsJson(Plain.Diagnostics, Req.Path),
            renderDiagsJson(R.Diagnostics, Req.Path));
}

// The edit-replay harness: every corpus example through a scripted edit
// session, each revision diffed byte-for-byte against a cold run.
TEST(IncrementalTest, CorpusEditReplayMatchesCold) {
  unsigned Checked = 0;
  for (const fs::directory_entry &Entry :
       fs::directory_iterator(CSDF_EXAMPLES_DIR)) {
    if (Entry.path().extension() != ".mpl")
      continue;
    std::string Original = readFileOrDie(Entry.path());
    std::string Path = Entry.path().filename().string();

    // One warm editor session per example; revisions replayed in order.
    api::Analyzer An(api::AnalyzerConfig::warm());
    const std::string Revisions[] = {
        Original,
        Original, // exact repeat: cache hit
        reformat(Original),
        Original, // revert
        Original + "\nzz9 = id;\nprint zz9;\n",
    };
    for (const std::string &Rev : Revisions) {
      api::AnalyzeRequest Req = request(Rev, Path);
      api::AnalyzeResponse Inc = An.analyzeIncremental(Req);
      EXPECT_EQ(scrubWall(api::verdictJson(Path, Inc)), coldVerdict(Req))
          << Entry.path() << " revision " << (&Rev - Revisions);

      api::LintRequest LReq;
      LReq.Path = Path;
      LReq.Source = Rev;
      api::LintResponse LInc = An.lintIncremental(LReq);
      EXPECT_EQ(renderDiagsJson(LInc.Diagnostics, Path), coldLint(LReq))
          << Entry.path() << " revision " << (&Rev - Revisions);
    }
    ++Checked;
  }
  EXPECT_GE(Checked, 10u) << "example corpus went missing?";
}

} // namespace
