//===- tests/interp/InterpreterEdgeTest.cpp - Channel/scheduler edge cases -----===//

#include "interp/Interpreter.h"

#include "cfg/CfgBuilder.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace csdf;

namespace {

struct Built {
  Program Prog;
  Cfg Graph;
};

Built buildFrom(const std::string &Source) {
  Built B;
  B.Prog = parseProgramOrDie(Source);
  B.Graph = buildCfg(B.Prog);
  return B;
}

TEST(InterpreterEdgeTest, ChannelIsStrictlyFifo) {
  // Two messages on the same channel arrive in send order.
  Built B = buildFrom(R"mpl(
if id == 0 then
  send 1 -> 1;
  send 2 -> 1;
elif id == 1 then
  recv a <- 0;
  recv b <- 0;
  print a;
  print b;
end
)mpl");
  RunOptions Opts;
  Opts.NumProcs = 2;
  RunResult R = runProgram(B.Graph, Opts);
  ASSERT_TRUE(R.finished()) << R.Error;
  EXPECT_EQ(R.Prints[1], (std::vector<std::int64_t>{1, 2}));
  // Channel sequence numbers are 0 then 1.
  ASSERT_EQ(R.Trace.size(), 2u);
  auto Canon = R.canonicalTrace();
  EXPECT_EQ(Canon[0].ChannelSeq, 0u);
  EXPECT_EQ(Canon[1].ChannelSeq, 1u);
  EXPECT_EQ(Canon[0].Value, 1);
  EXPECT_EQ(Canon[1].Value, 2);
}

TEST(InterpreterEdgeTest, DistinctChannelsDoNotInterfere) {
  // Messages from different senders to one receiver are independent
  // FIFOs; the receiver picks by source.
  Built B = buildFrom(R"mpl(
if id == 0 then
  recv a <- 2;
  recv b <- 1;
  print a;
  print b;
elif id == 1 then
  send 11 -> 0;
else
  send 22 -> 0;
end
)mpl");
  RunOptions Opts;
  Opts.NumProcs = 3;
  RunResult R = runProgram(B.Graph, Opts);
  ASSERT_TRUE(R.finished()) << R.Error;
  EXPECT_EQ(R.Prints[0], (std::vector<std::int64_t>{22, 11}));
}

TEST(InterpreterEdgeTest, TagAtHeadBlocksChannel) {
  // Strict FIFO per channel: a mismatched tag at the head blocks even if
  // a matching message is queued behind it.
  Built B = buildFrom(R"mpl(
if id == 0 then
  send 1 -> 1 tag 7;
  send 2 -> 1 tag 9;
elif id == 1 then
  recv a <- 0 tag 9;
end
)mpl");
  RunOptions Opts;
  Opts.NumProcs = 2;
  RunResult R = runProgram(B.Graph, Opts);
  EXPECT_EQ(R.Status, RunStatus::Deadlock);
  EXPECT_EQ(R.Leaks.size(), 2u);
}

TEST(InterpreterEdgeTest, MatchingTagAtHeadPasses) {
  Built B = buildFrom(R"mpl(
if id == 0 then
  send 5 -> 1 tag 9;
elif id == 1 then
  recv a <- 0 tag 9;
  print a;
end
)mpl");
  RunOptions Opts;
  Opts.NumProcs = 2;
  RunResult R = runProgram(B.Graph, Opts);
  ASSERT_TRUE(R.finished()) << R.Error;
  EXPECT_EQ(R.Prints[1], std::vector<std::int64_t>{5});
}

TEST(InterpreterEdgeTest, TwoRoundExchangeKeepsOrder) {
  // Each worker receives two messages from the root on one channel.
  Built B = buildFrom(R"mpl(
if id == 0 then
  for i = 1 to np - 1 do
    send i -> i;
  end
  for j = 1 to np - 1 do
    send j * 10 -> j;
  end
else
  recv first <- 0;
  recv second <- 0;
end
)mpl");
  RunOptions Opts;
  Opts.NumProcs = 4;
  RunResult R = runProgram(B.Graph, Opts);
  ASSERT_TRUE(R.finished()) << R.Error;
  for (int Rank = 1; Rank < 4; ++Rank) {
    EXPECT_EQ(R.FinalVars[Rank].at("first"), Rank);
    EXPECT_EQ(R.FinalVars[Rank].at("second"), Rank * 10);
  }
}

TEST(InterpreterEdgeTest, SchedulersAgreeOnTwoRoundExchange) {
  Built B = buildFrom(R"mpl(
if id == 0 then
  for i = 1 to np - 1 do
    send i -> i;
  end
  for j = 1 to np - 1 do
    send j * 10 -> j;
  end
else
  recv first <- 0;
  recv second <- 0;
end
)mpl");
  RunOptions Opts;
  Opts.NumProcs = 5;
  RoundRobinScheduler RR;
  RunResult Ref = runProgram(B.Graph, Opts, RR);
  LifoScheduler L;
  RunResult RL = runProgram(B.Graph, Opts, L);
  RandomScheduler Rnd(99);
  RunResult RR2 = runProgram(B.Graph, Opts, Rnd);
  EXPECT_EQ(Ref.FinalVars, RL.FinalVars);
  EXPECT_EQ(Ref.FinalVars, RR2.FinalVars);
}

TEST(InterpreterEdgeTest, SingleProcessProgramRuns) {
  Built B = buildFrom("x = 1; print x + np;");
  RunOptions Opts;
  Opts.NumProcs = 1;
  RunResult R = runProgram(B.Graph, Opts);
  ASSERT_TRUE(R.finished()) << R.Error;
  EXPECT_EQ(R.Prints[0], std::vector<std::int64_t>{2});
}

TEST(InterpreterEdgeTest, AssertFailureStopsRun) {
  Built B = buildFrom("assert id < 0;");
  RunOptions Opts;
  Opts.NumProcs = 2;
  RunResult R = runProgram(B.Graph, Opts);
  EXPECT_EQ(R.Status, RunStatus::AssertFailed);
  EXPECT_NE(R.Error.find("assert"), std::string::npos);
}

TEST(InterpreterEdgeTest, AssertPassingContinues) {
  Built B = buildFrom("assert id >= 0; print 1;");
  RunOptions Opts;
  Opts.NumProcs = 2;
  RunResult R = runProgram(B.Graph, Opts);
  ASSERT_TRUE(R.finished()) << R.Error;
}

TEST(InterpreterEdgeTest, ParamsArePerProcessBound) {
  Built B = buildFrom("print nrows * ncols;");
  RunOptions Opts;
  Opts.NumProcs = 3;
  Opts.Params = {{"nrows", 3}, {"ncols", 5}};
  RunResult R = runProgram(B.Graph, Opts);
  ASSERT_TRUE(R.finished()) << R.Error;
  for (int Rank = 0; Rank < 3; ++Rank)
    EXPECT_EQ(R.Prints[Rank], std::vector<std::int64_t>{15});
}

TEST(InterpreterEdgeTest, InputIndexIsPerRank) {
  Built B = buildFrom("a = input(); b = input(); print a * 100 + b;");
  RunOptions Opts;
  Opts.NumProcs = 2;
  Opts.Input = [](int Rank, unsigned Index) {
    return static_cast<std::int64_t>(Rank * 10 + Index);
  };
  RunResult R = runProgram(B.Graph, Opts);
  ASSERT_TRUE(R.finished()) << R.Error;
  EXPECT_EQ(R.Prints[0], std::vector<std::int64_t>{1});     // 0*100 + 1
  EXPECT_EQ(R.Prints[1], std::vector<std::int64_t>{1011});  // 10*100 + 11
}

} // namespace
