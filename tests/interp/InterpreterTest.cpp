//===- tests/interp/InterpreterTest.cpp - Simulator tests --------------------===//

#include "interp/Interpreter.h"

#include "cfg/CfgBuilder.h"
#include "lang/Corpus.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace csdf;

namespace {

struct Built {
  Program Prog;
  Cfg Graph;
};

Built buildFrom(const std::string &Source) {
  Built B;
  B.Prog = parseProgramOrDie(Source);
  B.Graph = buildCfg(B.Prog);
  return B;
}

TEST(InterpreterTest, Figure2BothProcessesPrintFive) {
  Built B = buildFrom(corpus::figure2Exchange());
  RunOptions Opts;
  Opts.NumProcs = 4;
  RunResult R = runProgram(B.Graph, Opts);
  ASSERT_TRUE(R.finished()) << R.Error;
  EXPECT_EQ(R.Prints[0], std::vector<std::int64_t>{5});
  EXPECT_EQ(R.Prints[1], std::vector<std::int64_t>{5});
  EXPECT_TRUE(R.Prints[2].empty());
  EXPECT_EQ(R.Trace.size(), 2u);
  EXPECT_TRUE(R.Leaks.empty());
}

TEST(InterpreterTest, FanOutBroadcastDeliversToAll) {
  Built B = buildFrom(corpus::fanOutBroadcast());
  RunOptions Opts;
  Opts.NumProcs = 8;
  RunResult R = runProgram(B.Graph, Opts);
  ASSERT_TRUE(R.finished()) << R.Error;
  EXPECT_EQ(R.Trace.size(), 7u);
  for (int Rank = 1; Rank < 8; ++Rank)
    EXPECT_EQ(R.FinalVars[Rank].at("y"), 42);
}

TEST(InterpreterTest, ExchangeWithRootRoundTrips) {
  Built B = buildFrom(corpus::exchangeWithRoot());
  RunOptions Opts;
  Opts.NumProcs = 6;
  RunResult R = runProgram(B.Graph, Opts);
  ASSERT_TRUE(R.finished()) << R.Error;
  // np-1 pairs of messages.
  EXPECT_EQ(R.Trace.size(), 10u);
  for (int Rank = 1; Rank < 6; ++Rank)
    EXPECT_EQ(R.FinalVars[Rank].at("y"), 7);
  EXPECT_EQ(R.FinalVars[0].at("y"), 7);
}

TEST(InterpreterTest, TransposeSquareSwapsValues) {
  Built B = buildFrom(corpus::transposeSquare());
  RunOptions Opts;
  Opts.NumProcs = 16;
  Opts.Params["nrows"] = 4;
  RunResult R = runProgram(B.Graph, Opts);
  ASSERT_TRUE(R.finished()) << R.Error;
  for (int Id = 0; Id < 16; ++Id) {
    int Partner = (Id % 4) * 4 + Id / 4;
    EXPECT_EQ(R.FinalVars[Id].at("y"), 100 + Partner) << Id;
  }
}

TEST(InterpreterTest, TransposeRectSwapsValues) {
  Built B = buildFrom(corpus::transposeRect());
  RunOptions Opts;
  Opts.NumProcs = 18; // nrows=3, ncols=6
  Opts.Params["nrows"] = 3;
  Opts.Params["ncols"] = 6;
  RunResult R = runProgram(B.Graph, Opts);
  ASSERT_TRUE(R.finished()) << R.Error;
  for (int Id = 0; Id < 18; ++Id) {
    int Partner = 2 * 3 * (Id / 2 % 3) + 2 * (Id / 6) + Id % 2;
    if (Partner == Id)
      continue; // Diagonal pairs may self-match only if expression says so.
    EXPECT_EQ(R.FinalVars[Id].at("y"), 100 + Partner) << Id;
  }
}

TEST(InterpreterTest, AssumeViolationAborts) {
  Built B = buildFrom(corpus::transposeSquare());
  RunOptions Opts;
  Opts.NumProcs = 15; // Not a square.
  Opts.Params["nrows"] = 4;
  RunResult R = runProgram(B.Graph, Opts);
  EXPECT_EQ(R.Status, RunStatus::AssertFailed);
}

TEST(InterpreterTest, NeighborShiftPipelines) {
  Built B = buildFrom(corpus::neighborShift());
  RunOptions Opts;
  Opts.NumProcs = 10;
  RunResult R = runProgram(B.Graph, Opts);
  ASSERT_TRUE(R.finished()) << R.Error;
  EXPECT_EQ(R.Trace.size(), 9u);
  for (int Rank = 1; Rank < 10; ++Rank)
    EXPECT_EQ(R.FinalVars[Rank].at("y"), Rank - 1);
}

TEST(InterpreterTest, MessageLeakIsReported) {
  Built B = buildFrom(corpus::messageLeak());
  RunOptions Opts;
  Opts.NumProcs = 2;
  RunResult R = runProgram(B.Graph, Opts);
  ASSERT_TRUE(R.finished()) << R.Error;
  ASSERT_EQ(R.Leaks.size(), 1u);
  EXPECT_EQ(R.Leaks[0].Sender, 0);
  EXPECT_EQ(R.Leaks[0].Receiver, 1);
}

TEST(InterpreterTest, HeadToHeadDeadlocks) {
  Built B = buildFrom(corpus::headToHeadDeadlock());
  RunOptions Opts;
  Opts.NumProcs = 2;
  RunResult R = runProgram(B.Graph, Opts);
  EXPECT_EQ(R.Status, RunStatus::Deadlock);
  EXPECT_EQ(R.BlockedRanks.size(), 2u);
}

TEST(InterpreterTest, TagMismatchDeadlocksAndLeaks) {
  Built B = buildFrom(corpus::tagMismatch());
  RunOptions Opts;
  Opts.NumProcs = 2;
  RunResult R = runProgram(B.Graph, Opts);
  EXPECT_EQ(R.Status, RunStatus::Deadlock);
  EXPECT_EQ(R.Leaks.size(), 1u);
}

TEST(InterpreterTest, RingShiftWorksWithNonBlockingSends) {
  Built B = buildFrom(corpus::ringShift());
  RunOptions Opts;
  Opts.NumProcs = 5;
  RunResult R = runProgram(B.Graph, Opts);
  ASSERT_TRUE(R.finished()) << R.Error;
  for (int Rank = 0; Rank < 5; ++Rank)
    EXPECT_EQ(R.FinalVars[Rank].at("y"), (Rank + 4) % 5);
}

TEST(InterpreterTest, SelfSendThenSelfRecvWorks) {
  // Diagonal processes of a transpose are their own partners; the model's
  // one-channel-per-pair FIFO includes the self channel.
  Built B = buildFrom("x = 41; send x + 1 -> id; recv y <- id; print y;");
  RunOptions Opts;
  Opts.NumProcs = 2;
  RunResult R = runProgram(B.Graph, Opts);
  ASSERT_TRUE(R.finished()) << R.Error;
  EXPECT_EQ(R.Prints[0], std::vector<std::int64_t>{42});
  EXPECT_EQ(R.Prints[1], std::vector<std::int64_t>{42});
}

TEST(InterpreterTest, SendOutOfRangeIsAnError) {
  Built B = buildFrom("x = 1; send x -> np;");
  RunOptions Opts;
  Opts.NumProcs = 2;
  RunResult R = runProgram(B.Graph, Opts);
  EXPECT_EQ(R.Status, RunStatus::EvalError);
}

TEST(InterpreterTest, DivisionByZeroIsAnError) {
  Built B = buildFrom("x = 1 / (np - np);");
  RunOptions Opts;
  Opts.NumProcs = 1;
  RunResult R = runProgram(B.Graph, Opts);
  EXPECT_EQ(R.Status, RunStatus::EvalError);
}

TEST(InterpreterTest, InfiniteLoopHitsStepLimit) {
  Built B = buildFrom("x = 0; while 1 == 1 do x = x + 1; end");
  RunOptions Opts;
  Opts.NumProcs = 1;
  Opts.MaxSteps = 1000;
  RunResult R = runProgram(B.Graph, Opts);
  EXPECT_EQ(R.Status, RunStatus::StepLimit);
}

TEST(InterpreterTest, InputProviderIsConsulted) {
  Built B = buildFrom("x = input(); y = input(); print x + y;");
  RunOptions Opts;
  Opts.NumProcs = 1;
  Opts.Input = [](int, unsigned Index) {
    return static_cast<std::int64_t>(Index + 10);
  };
  RunResult R = runProgram(B.Graph, Opts);
  ASSERT_TRUE(R.finished()) << R.Error;
  EXPECT_EQ(R.Prints[0], std::vector<std::int64_t>{21});
}

//===----------------------------------------------------------------------===//
// Interleaving-obliviousness (Section III / Appendix): the outcome must not
// depend on the scheduler.
//===----------------------------------------------------------------------===//

class ObliviousnessTest
    : public ::testing::TestWithParam<corpus::NamedProgram> {};

TEST_P(ObliviousnessTest, OutcomeIsScheduleIndependent) {
  const auto &[Name, Source] = GetParam();
  Built B = buildFrom(Source);
  RunOptions Opts;
  Opts.NumProcs = 8;
  Opts.Params["nrows"] = 2;
  Opts.Params["ncols"] = 4;
  Opts.Params["half"] = 4;

  // Skip parameterizations that violate a program's assumes.
  RoundRobinScheduler RR;
  RunResult Ref = runProgram(B.Graph, Opts, RR);
  if (Ref.Status == RunStatus::AssertFailed)
    GTEST_SKIP() << "parameters do not satisfy assumes for " << Name;
  ASSERT_TRUE(Ref.finished()) << Name << ": " << Ref.Error;

  LifoScheduler Lifo;
  RunResult L = runProgram(B.Graph, Opts, Lifo);
  ASSERT_TRUE(L.finished()) << Name;

  for (std::uint64_t Seed : {1u, 7u, 1234u}) {
    RandomScheduler Rand(Seed);
    RunResult R = runProgram(B.Graph, Opts, Rand);
    ASSERT_TRUE(R.finished()) << Name << " seed " << Seed;
    EXPECT_EQ(R.Prints, Ref.Prints) << Name;
    EXPECT_EQ(R.FinalVars, Ref.FinalVars) << Name;
    auto CanonR = R.canonicalTrace();
    auto CanonRef = Ref.canonicalTrace();
    ASSERT_EQ(CanonR.size(), CanonRef.size()) << Name;
    for (size_t I = 0; I < CanonR.size(); ++I) {
      EXPECT_EQ(CanonR[I].Sender, CanonRef[I].Sender) << Name;
      EXPECT_EQ(CanonR[I].Receiver, CanonRef[I].Receiver) << Name;
      EXPECT_EQ(CanonR[I].Value, CanonRef[I].Value) << Name;
      EXPECT_EQ(CanonR[I].SendNode, CanonRef[I].SendNode) << Name;
      EXPECT_EQ(CanonR[I].RecvNode, CanonRef[I].RecvNode) << Name;
    }
  }
  EXPECT_EQ(L.Prints, Ref.Prints) << Name;
  EXPECT_EQ(L.FinalVars, Ref.FinalVars) << Name;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, ObliviousnessTest, ::testing::ValuesIn(corpus::allPatterns()),
    [](const ::testing::TestParamInfo<corpus::NamedProgram> &Info) {
      std::string Name = Info.param.Name;
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });

} // namespace
