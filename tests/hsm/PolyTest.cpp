//===- tests/hsm/PolyTest.cpp - Symbolic polynomial tests ---------------------===//

#include "hsm/Poly.h"

#include <gtest/gtest.h>

using namespace csdf;

namespace {

TEST(MonoTest, TimesMergesVars) {
  Mono A(2, {"x"});
  Mono B(3, {"x", "y"});
  Mono C = A.times(B);
  EXPECT_EQ(C.Coeff, 6);
  EXPECT_EQ(C.Vars, (std::vector<std::string>{"x", "x", "y"}));
}

TEST(MonoTest, DividedByExact) {
  Mono A(6, {"x", "x", "y"});
  auto Q = A.dividedBy(Mono(2, {"x"}));
  ASSERT_TRUE(Q.has_value());
  EXPECT_EQ(Q->Coeff, 3);
  EXPECT_EQ(Q->Vars, (std::vector<std::string>{"x", "y"}));
}

TEST(MonoTest, DividedByFailsOnCoeff) {
  EXPECT_FALSE(Mono(5, {"x"}).dividedBy(Mono(2)).has_value());
}

TEST(MonoTest, DividedByFailsOnMissingVar) {
  EXPECT_FALSE(Mono(4, {"x"}).dividedBy(Mono(2, {"y"})).has_value());
}

TEST(PolyTest, NormalizationMergesLikeTerms) {
  Poly P({Mono(1, {"x"}), Mono(2, {"x"}), Mono(3)});
  EXPECT_EQ(P.terms().size(), 2u);
  EXPECT_EQ(P.str(), "3+3*x");
}

TEST(PolyTest, ZeroTermsDrop) {
  Poly P = Poly::var("x").minus(Poly::var("x"));
  EXPECT_TRUE(P.isZero());
  EXPECT_EQ(P.str(), "0");
}

TEST(PolyTest, ArithmeticIdentities) {
  Poly X = Poly::var("x");
  Poly Y = Poly::var("y");
  EXPECT_EQ(X.plus(Y), Y.plus(X));
  EXPECT_EQ(X.times(Y), Y.times(X));
  EXPECT_EQ(X.times(Poly(0)), Poly(0));
  EXPECT_EQ(X.times(Poly(1)), X);
  EXPECT_EQ(X.plus(Poly(0)), X);
}

TEST(PolyTest, Distribution) {
  Poly X = Poly::var("x");
  Poly Y = Poly::var("y");
  Poly Lhs = X.plus(Y).times(X);
  Poly Rhs = X.times(X).plus(Y.times(X));
  EXPECT_EQ(Lhs, Rhs);
}

TEST(PolyTest, DividedByMono) {
  Poly P = Poly::var("n").times(Poly::var("n")).times(Poly(2)); // 2n^2
  auto Q = P.dividedBy(Mono(2, {"n"}));
  ASSERT_TRUE(Q.has_value());
  EXPECT_EQ(*Q, Poly::var("n"));
  EXPECT_FALSE(P.dividedBy(Mono(4, {"n"})).has_value());
}

TEST(PolyTest, DividedByMixedFails) {
  Poly P = Poly::var("n").plus(Poly(1)); // n + 1
  EXPECT_FALSE(P.dividedBy(Mono(1, {"n"})).has_value());
}

TEST(PolyTest, Eval) {
  // 2*n*n - 3 at n=4 -> 29.
  Poly P = Poly(2).times(Poly::var("n")).times(Poly::var("n")).minus(Poly(3));
  EXPECT_EQ(P.eval({{"n", 4}}), 29);
  EXPECT_FALSE(P.eval({}).has_value());
}

TEST(FactEnvTest, RewriteSubstitutes) {
  FactEnv F;
  ASSERT_TRUE(F.addRewrite("np", Poly::var("nrows").times(Poly::var("nrows"))));
  EXPECT_TRUE(F.equal(Poly::var("np"),
                      Poly::var("nrows").times(Poly::var("nrows"))));
  EXPECT_FALSE(F.equal(Poly::var("np"), Poly::var("nrows")));
}

TEST(FactEnvTest, ChainedRewrites) {
  // np == ncols * nrows, ncols == 2 * nrows => np == 2 * nrows^2.
  FactEnv F;
  ASSERT_TRUE(
      F.addRewrite("np", Poly::var("ncols").times(Poly::var("nrows"))));
  ASSERT_TRUE(F.addRewrite("ncols", Poly(2).times(Poly::var("nrows"))));
  Poly TwoN2 = Poly(2).times(Poly::var("nrows")).times(Poly::var("nrows"));
  EXPECT_TRUE(F.equal(Poly::var("np"), TwoN2));
}

TEST(FactEnvTest, RejectsCyclicRewrite) {
  FactEnv F;
  ASSERT_TRUE(F.addRewrite("a", Poly::var("b")));
  EXPECT_FALSE(F.addRewrite("b", Poly::var("a")));
}

TEST(FactEnvTest, DivideModuloFacts) {
  FactEnv F;
  ASSERT_TRUE(F.addRewrite("np", Poly::var("nrows").times(Poly::var("nrows"))));
  // np / nrows == nrows.
  auto Q = F.divide(Poly::var("np"), Poly::var("nrows"));
  ASSERT_TRUE(Q.has_value());
  EXPECT_TRUE(F.equal(*Q, Poly::var("nrows")));
}

TEST(FactEnvTest, SquareBranchUnification) {
  // assume np == ncols*nrows; assume ncols == nrows (square branch).
  FactEnv F;
  ASSERT_TRUE(
      F.addRewrite("np", Poly::var("ncols").times(Poly::var("nrows"))));
  ASSERT_TRUE(F.addRewrite("ncols", Poly::var("nrows")));
  EXPECT_TRUE(F.equal(Poly::var("np"),
                      Poly::var("nrows").times(Poly::var("nrows"))));
}

} // namespace
