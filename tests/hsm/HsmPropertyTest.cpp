//===- tests/hsm/HsmPropertyTest.cpp - Randomized HSM algebra laws -------------===//
//
// Randomized cross-validation of the symbolic HSM operations against
// concrete enumeration: whenever a Table I rule fires, the resulting
// sequence must equal the element-wise arithmetic result; normalization
// and the equality rules must preserve sequence/set semantics.
//
//===----------------------------------------------------------------------===//

#include "hsm/Hsm.h"

#include <algorithm>
#include <gtest/gtest.h>

using namespace csdf;

namespace {

class Rng {
public:
  explicit Rng(std::uint64_t Seed) : State(Seed | 1) {}

  std::uint64_t next() {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    return State * 0x2545F4914F6CDD1Dull;
  }

  std::int64_t range(std::int64_t Lo, std::int64_t Hi) {
    return Lo + static_cast<std::int64_t>(
                    next() % static_cast<std::uint64_t>(Hi - Lo + 1));
  }

private:
  std::uint64_t State;
};

/// A random concrete HSM with 1-3 levels and small extents.
Hsm randomHsm(Rng &R) {
  Hsm H(Poly(R.range(0, 12)));
  int Levels = static_cast<int>(R.range(1, 3));
  for (int L = 0; L < Levels; ++L)
    H = H.repeated(Poly(R.range(1, 4)), Poly(R.range(0, 6)));
  return H;
}

using Env = std::vector<std::pair<std::string, std::int64_t>>;

class HsmPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(HsmPropertyTest, NormalizePreservesSequence) {
  Rng R(GetParam());
  FactEnv Facts;
  for (int Trial = 0; Trial < 50; ++Trial) {
    Hsm H = randomHsm(R);
    Hsm N = hsmNormalize(H, Facts);
    EXPECT_EQ(H.enumerate({}), N.enumerate({}))
        << H.str() << " vs " << N.str();
  }
}

TEST_P(HsmPropertyTest, AdditionMatchesElementwise) {
  Rng R(GetParam() + 10);
  FactEnv Facts;
  int Fired = 0;
  for (int Trial = 0; Trial < 80; ++Trial) {
    Hsm A = randomHsm(R);
    Hsm B = randomHsm(R);
    auto SA = *A.enumerate({});
    auto SB = *B.enumerate({});
    auto Sum = hsmAdd(A, B, Facts);
    if (SA.size() != SB.size()) {
      EXPECT_FALSE(Sum.has_value()) << "added unequal lengths";
      continue;
    }
    if (!Sum)
      continue; // Alignment rule did not fire; allowed.
    ++Fired;
    auto SS = *Sum->enumerate({});
    ASSERT_EQ(SS.size(), SA.size());
    for (size_t I = 0; I < SA.size(); ++I)
      EXPECT_EQ(SS[I], SA[I] + SB[I])
          << A.str() << " + " << B.str() << " at " << I;
  }
  EXPECT_GT(Fired, 0) << "addition rule never fired";
}

TEST_P(HsmPropertyTest, ScaleMatchesElementwise) {
  Rng R(GetParam() + 20);
  for (int Trial = 0; Trial < 50; ++Trial) {
    Hsm A = randomHsm(R);
    std::int64_t Q = R.range(-3, 5);
    Hsm S = hsmScale(A, Poly(Q));
    auto SA = *A.enumerate({});
    auto SS = *S.enumerate({});
    ASSERT_EQ(SS.size(), SA.size());
    for (size_t I = 0; I < SA.size(); ++I)
      EXPECT_EQ(SS[I], SA[I] * Q);
  }
}

TEST_P(HsmPropertyTest, DivModAgreeWhenRulesFire) {
  Rng R(GetParam() + 30);
  FactEnv Facts;
  int Fired = 0;
  for (int Trial = 0; Trial < 120; ++Trial) {
    Hsm A = randomHsm(R);
    std::int64_t Q = R.range(2, 9);
    auto SA = *A.enumerate({});
    if (auto D = hsmDiv(A, Poly(Q), Facts)) {
      ++Fired;
      auto SD = *D->enumerate({});
      ASSERT_EQ(SD.size(), SA.size());
      for (size_t I = 0; I < SA.size(); ++I)
        EXPECT_EQ(SD[I], SA[I] / Q)
            << A.str() << " / " << Q << " at " << I;
    }
    if (auto M = hsmMod(A, Poly(Q), Facts)) {
      auto SM = *M->enumerate({});
      ASSERT_EQ(SM.size(), SA.size());
      for (size_t I = 0; I < SA.size(); ++I)
        EXPECT_EQ(SM[I], SA[I] % Q)
            << A.str() << " % " << Q << " at " << I;
    }
  }
  EXPECT_GT(Fired, 0) << "division rules never fired";
}

TEST_P(HsmPropertyTest, SequenceEqualityImpliesEqualSequences) {
  Rng R(GetParam() + 40);
  FactEnv Facts;
  for (int Trial = 0; Trial < 60; ++Trial) {
    Hsm A = randomHsm(R);
    Hsm B = randomHsm(R);
    if (hsmSequenceEquals(A, B, Facts)) {
      EXPECT_EQ(A.enumerate({}), B.enumerate({}))
          << A.str() << " ~seq~ " << B.str();
    }
  }
}

TEST_P(HsmPropertyTest, SetEqualityImpliesEqualSortedSequences) {
  Rng R(GetParam() + 50);
  FactEnv Facts;
  for (int Trial = 0; Trial < 60; ++Trial) {
    Hsm A = randomHsm(R);
    Hsm B = randomHsm(R);
    if (!hsmSetEquals(A, B, Facts))
      continue;
    auto SA = *A.enumerate({});
    auto SB = *B.enumerate({});
    std::sort(SA.begin(), SA.end());
    std::sort(SB.begin(), SB.end());
    SA.erase(std::unique(SA.begin(), SA.end()), SA.end());
    SB.erase(std::unique(SB.begin(), SB.end()), SB.end());
    EXPECT_EQ(SA, SB) << A.str() << " ~set~ " << B.str();
  }
}

TEST_P(HsmPropertyTest, SwappedLevelsAreSetEqual) {
  Rng R(GetParam() + 60);
  FactEnv Facts;
  for (int Trial = 0; Trial < 40; ++Trial) {
    Poly Base(R.range(0, 5));
    HsmLevel L1{Poly(R.range(1, 4)), Poly(R.range(0, 5))};
    HsmLevel L2{Poly(R.range(1, 4)), Poly(R.range(0, 5))};
    Hsm A(Base, {L1, L2});
    Hsm B(Base, {L2, L1});
    EXPECT_TRUE(hsmSetEquals(A, B, Facts))
        << A.str() << " vs " << B.str();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HsmPropertyTest,
                         ::testing::Values(3, 17, 99, 2024));

} // namespace
