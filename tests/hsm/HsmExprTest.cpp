//===- tests/hsm/HsmExprTest.cpp - Expression-to-HSM and matching tests -------===//

#include "hsm/HsmExpr.h"

#include "lang/Parser.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace csdf;

namespace {

class HsmExprTest : public ::testing::Test {
protected:
  const Expr *parseExpr(const std::string &Text) {
    ParseResult R = parseProgram("x = " + Text + ";");
    EXPECT_TRUE(R.succeeded()) << Text;
    Programs.push_back(std::move(R.Prog));
    return cast<AssignStmt>(Programs.back().body()[0])->value();
  }

  std::vector<Program> Programs;
};

using Env = std::vector<std::pair<std::string, std::int64_t>>;

TEST_F(HsmExprTest, PolyOfExprBasics) {
  EXPECT_EQ(polyOfExpr(parseExpr("2 * nrows + 1")),
            Poly(2).times(Poly::var("nrows")).plus(Poly(1)));
  EXPECT_EQ(polyOfExpr(parseExpr("nrows * nrows - np")),
            Poly::var("nrows").times(Poly::var("nrows"))
                .minus(Poly::var("np")));
  EXPECT_FALSE(polyOfExpr(parseExpr("id / 2")).has_value());
}

TEST_F(HsmExprTest, AddAssumeFactDirected) {
  FactEnv F;
  EXPECT_TRUE(addAssumeFact(F, parseExpr("np == ncols * nrows")));
  EXPECT_TRUE(addAssumeFact(F, parseExpr("ncols == nrows")));
  EXPECT_TRUE(F.equal(Poly::var("np"),
                      Poly::var("nrows").times(Poly::var("nrows"))));
}

TEST_F(HsmExprTest, AddAssumeFactReversedSides) {
  FactEnv F;
  EXPECT_TRUE(addAssumeFact(F, parseExpr("2 * half == np")));
  EXPECT_TRUE(F.equal(Poly::var("np"), Poly(2).times(Poly::var("half"))));
}

TEST_F(HsmExprTest, AddAssumeFactRejectsInequalities) {
  FactEnv F;
  EXPECT_FALSE(addAssumeFact(F, parseExpr("np > 2")));
}

TEST_F(HsmExprTest, IdExprIsDomain) {
  FactEnv F;
  Hsm Dom = Hsm::range(Poly(0), Poly(8));
  auto H = hsmOfExpr(parseExpr("id"), Dom, F);
  ASSERT_TRUE(H.has_value());
  EXPECT_EQ(*H, Dom);
}

TEST_F(HsmExprTest, ShiftExpr) {
  FactEnv F;
  Hsm Dom = Hsm::range(Poly(0), Poly(6));
  auto H = hsmOfExpr(parseExpr("id + 1"), Dom, F);
  ASSERT_TRUE(H.has_value());
  EXPECT_EQ(H->enumerate({}),
            (std::vector<std::int64_t>{1, 2, 3, 4, 5, 6}));
}

TEST_F(HsmExprTest, SubtractionExpr) {
  FactEnv F;
  Hsm Dom = Hsm::range(Poly(1), Poly(5));
  auto H = hsmOfExpr(parseExpr("id - 1"), Dom, F);
  ASSERT_TRUE(H.has_value());
  EXPECT_EQ(H->enumerate({}), (std::vector<std::int64_t>{0, 1, 2, 3, 4}));
}

TEST_F(HsmExprTest, TransposeSquareExprConcrete) {
  FactEnv F;
  ASSERT_TRUE(addAssumeFact(F, parseExpr("np == nrows * nrows")));
  Hsm Dom = Hsm::range(Poly(0), Poly::var("np"));
  auto H = hsmOfExpr(parseExpr("(id % nrows) * nrows + id / nrows"), Dom, F);
  ASSERT_TRUE(H.has_value());
  Env E = {{"nrows", 4}, {"np", 16}};
  auto Seq = H->enumerate(E);
  ASSERT_TRUE(Seq.has_value());
  for (int Id = 0; Id < 16; ++Id)
    EXPECT_EQ((*Seq)[Id], (Id % 4) * 4 + Id / 4) << Id;
}

TEST_F(HsmExprTest, RectTransposeExprConcrete) {
  FactEnv F;
  ASSERT_TRUE(addAssumeFact(F, parseExpr("ncols == nrows * 2")));
  ASSERT_TRUE(addAssumeFact(F, parseExpr("np == ncols * nrows")));
  Hsm Dom = Hsm::range(Poly(0), Poly::var("np"));
  auto H = hsmOfExpr(
      parseExpr(
          "2 * nrows * (id / 2 % nrows) + 2 * (id / (2 * nrows)) + id % 2"),
      Dom, F);
  ASSERT_TRUE(H.has_value());
  Env E = {{"nrows", 3}, {"ncols", 6}, {"np", 18}};
  auto Seq = H->enumerate(E);
  ASSERT_TRUE(Seq.has_value());
  for (int Id = 0; Id < 18; ++Id)
    EXPECT_EQ((*Seq)[Id], 2 * 3 * (Id / 2 % 3) + 2 * (Id / 6) + Id % 2) << Id;
}

//===----------------------------------------------------------------------===//
// Full matching proofs from the paper
//===----------------------------------------------------------------------===//

TEST_F(HsmExprTest, TransposeSquareFullSetMatch) {
  FactEnv F;
  ASSERT_TRUE(addAssumeFact(F, parseExpr("np == ncols * nrows")));
  ASSERT_TRUE(addAssumeFact(F, parseExpr("ncols == nrows")));
  const Expr *E = parseExpr("(id % nrows) * nrows + id / nrows");
  EXPECT_TRUE(hsmFullSetMatch(E, Poly(0), Poly::var("np"), E, Poly(0),
                              Poly::var("np"), F));
}

TEST_F(HsmExprTest, TransposeRectFullSetMatch) {
  FactEnv F;
  ASSERT_TRUE(addAssumeFact(F, parseExpr("np == ncols * nrows")));
  ASSERT_TRUE(addAssumeFact(F, parseExpr("ncols == nrows * 2")));
  const Expr *E = parseExpr(
      "2 * nrows * (id / 2 % nrows) + 2 * (id / (2 * nrows)) + id % 2");
  EXPECT_TRUE(hsmFullSetMatch(E, Poly(0), Poly::var("np"), E, Poly(0),
                              Poly::var("np"), F));
}

TEST_F(HsmExprTest, TransposeWithoutFactsFails) {
  FactEnv F; // No np == nrows^2 fact.
  const Expr *E = parseExpr("(id % nrows) * nrows + id / nrows");
  EXPECT_FALSE(hsmFullSetMatch(E, Poly(0), Poly::var("np"), E, Poly(0),
                               Poly::var("np"), F));
}

TEST_F(HsmExprTest, NeighborShiftInteriorMatch) {
  // Senders [1..np-3]? Figure 7/8: senders [1..np-2] interior minus the
  // last... here: senders [S_lo..] send id+1, receivers recv id-1.
  // Match the block senders [1 .. np-3] -> receivers [2 .. np-2].
  FactEnv F;
  const Expr *SendE = parseExpr("id + 1");
  const Expr *RecvE = parseExpr("id - 1");
  // Sender range [1 .. np-3] has count np-3; receiver [2 .. np-2] too.
  Poly Count = Poly::var("np").minus(Poly(3));
  EXPECT_TRUE(
      hsmFullSetMatch(SendE, Poly(1), Count, RecvE, Poly(2), Count, F));
}

TEST_F(HsmExprTest, NeighborShiftEdgeMatch) {
  // [0] -> [1] under (id+1, id-1).
  FactEnv F;
  EXPECT_TRUE(hsmFullSetMatch(parseExpr("id + 1"), Poly(0), Poly(1),
                              parseExpr("id - 1"), Poly(1), Poly(1), F));
}

TEST_F(HsmExprTest, TwoDimensionalColumnShiftBlocks) {
  // Section VIII-C for d = 2: shifting one row down an nrows x ncols
  // mesh uses (id + ncols, id - ncols). All three role blocks match
  // fully symbolically in the grid parameters.
  FactEnv F;
  ASSERT_TRUE(addAssumeFact(F, parseExpr("np == nrows * ncols")));
  const Expr *SendE = parseExpr("id + ncols");
  const Expr *RecvE = parseExpr("id - ncols");
  Poly NCols = Poly::var("ncols");
  Poly Np = Poly::var("np");

  // Top row [0..ncols-1] -> second row [ncols..2*ncols-1].
  EXPECT_TRUE(hsmFullSetMatch(SendE, Poly(0), NCols, RecvE, NCols, NCols, F));
  // Interior block [ncols..np-2*ncols-1] -> [2*ncols..np-ncols-1].
  Poly InteriorCount = Np.minus(Poly(3).times(NCols));
  EXPECT_TRUE(hsmFullSetMatch(SendE, NCols, InteriorCount, RecvE,
                              Poly(2).times(NCols), InteriorCount, F));
  // Second-to-last row -> bottom row.
  EXPECT_TRUE(hsmFullSetMatch(SendE, Np.minus(Poly(2).times(NCols)), NCols,
                              RecvE, Np.minus(NCols), NCols, F));
}

TEST_F(HsmExprTest, TwoDimensionalShiftWrongDirectionFails) {
  FactEnv F;
  ASSERT_TRUE(addAssumeFact(F, parseExpr("np == nrows * ncols")));
  const Expr *SendE = parseExpr("id + ncols");
  const Expr *RecvE = parseExpr("id + ncols"); // Composition is id+2*ncols.
  Poly NCols = Poly::var("ncols");
  EXPECT_FALSE(
      hsmFullSetMatch(SendE, Poly(0), NCols, RecvE, NCols, NCols, F));
}

TEST_F(HsmExprTest, MismatchedCompositionFails) {
  // send id+1 vs recv id+1: composition is id+2, not identity.
  FactEnv F;
  EXPECT_FALSE(hsmFullSetMatch(parseExpr("id + 1"), Poly(1), Poly(4),
                               parseExpr("id + 1"), Poly(2), Poly(4), F));
}

TEST_F(HsmExprTest, NonSurjectiveFails) {
  // Senders [0..3] send to id+1 = [1..4]; receivers are [1..5]: not onto.
  FactEnv F;
  EXPECT_FALSE(hsmFullSetMatch(parseExpr("id + 1"), Poly(0), Poly(4),
                               parseExpr("id - 1"), Poly(1), Poly(5), F));
}

TEST_F(HsmExprTest, CollidingSendersFail) {
  // Figure 3(a): two senders map to one receiver. send id/2 from [0..3]
  // onto [0..1]: surjective but composition cannot be identity.
  FactEnv F;
  EXPECT_FALSE(hsmFullSetMatch(parseExpr("id / 2"), Poly(0), Poly(4),
                               parseExpr("id * 2"), Poly(0), Poly(2), F));
}

TEST_F(HsmExprTest, PairwiseExchangeMatch) {
  // Evens [0,2,..,np-2] send to id+1; odds receive from id-1. Whole-set
  // matching applies to the stride-2 HSM domains; our range-based API
  // models the evens as base 0 count half with expression on ranks — skip
  // stride domains here and check the rank-pair identity instead:
  // senders {0}, receivers {1} with (id+1, id-1).
  FactEnv F;
  EXPECT_TRUE(hsmFullSetMatch(parseExpr("id + 1"), Poly(0), Poly(1),
                              parseExpr("id - 1"), Poly(1), Poly(1), F));
}

TEST_F(HsmExprTest, BroadcastConstantDestination) {
  // Root {0} sends to constant i (singleton receiver {i}): send expr `i`,
  // recv expr `0`. Identity: recv(send(0)) == 0. Surjectivity: image {i}
  // equals receiver {i}.
  FactEnv F;
  EXPECT_TRUE(hsmFullSetMatch(parseExpr("i"), Poly(0), Poly(1),
                              parseExpr("0"), Poly::var("i"), Poly(1), F));
}

TEST_F(HsmExprTest, SelfExchangeDiagonal) {
  // A process sending to itself: {k} -> {k} with expr id.
  FactEnv F;
  EXPECT_TRUE(hsmFullSetMatch(parseExpr("id"), Poly::var("k"), Poly(1),
                              parseExpr("id"), Poly::var("k"), Poly(1), F));
}

} // namespace
