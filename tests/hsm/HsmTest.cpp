//===- tests/hsm/HsmTest.cpp - Hierarchical Sequence Map tests ----------------===//

#include "hsm/Hsm.h"

#include <gtest/gtest.h>

using namespace csdf;

namespace {

using Env = std::vector<std::pair<std::string, std::int64_t>>;

std::vector<std::int64_t> mustEnumerate(const Hsm &H, const Env &E) {
  auto Seq = H.enumerate(E);
  EXPECT_TRUE(Seq.has_value()) << H.str();
  return Seq.value_or(std::vector<std::int64_t>{});
}

TEST(HsmTest, PaperExampleSimpleSequence) {
  // [11 : 4, 5] = <11, 16, 21, 26>.
  Hsm H = Hsm::leaf(Poly(11), Poly(4), Poly(5));
  EXPECT_EQ(mustEnumerate(H, {}),
            (std::vector<std::int64_t>{11, 16, 21, 26}));
}

TEST(HsmTest, PaperExampleNestedSequence) {
  // [[0 : 10, 1] : 3, 100] = <0..9, 100..109, 200..209>.
  Hsm H = Hsm::leaf(Poly(0), Poly(10), Poly(1)).repeated(Poly(3), Poly(100));
  std::vector<std::int64_t> Seq = mustEnumerate(H, {});
  ASSERT_EQ(Seq.size(), 30u);
  EXPECT_EQ(Seq[0], 0);
  EXPECT_EQ(Seq[9], 9);
  EXPECT_EQ(Seq[10], 100);
  EXPECT_EQ(Seq[29], 209);
}

TEST(HsmTest, LengthIsProductOfRepeats) {
  Hsm H = Hsm::leaf(Poly(0), Poly::var("n"), Poly(1))
              .repeated(Poly::var("m"), Poly(7));
  EXPECT_EQ(H.length(), Poly::var("n").times(Poly::var("m")));
}

TEST(HsmTest, AdditionSameShape) {
  FactEnv F;
  // [0:6,2] + [1:6,3] = [1:6,5].
  Hsm A = Hsm::leaf(Poly(0), Poly(6), Poly(2));
  Hsm B = Hsm::leaf(Poly(1), Poly(6), Poly(3));
  auto C = hsmAdd(A, B, F);
  ASSERT_TRUE(C.has_value());
  EXPECT_EQ(mustEnumerate(*C, {}),
            (std::vector<std::int64_t>{1, 6, 11, 16, 21, 26}));
}

TEST(HsmTest, AdditionWithReshape) {
  FactEnv F;
  // [0:6,1] + [[0:2,0]:3,10]: the flat range must split into [[0:2,1]:3,2].
  Hsm A = Hsm::leaf(Poly(0), Poly(6), Poly(1));
  Hsm B = Hsm::leaf(Poly(0), Poly(2), Poly(0)).repeated(Poly(3), Poly(10));
  auto C = hsmAdd(A, B, F);
  ASSERT_TRUE(C.has_value());
  // Element i: i + 10*(i/2).
  std::vector<std::int64_t> Expect;
  for (int I = 0; I < 6; ++I)
    Expect.push_back(I + 10 * (I / 2));
  EXPECT_EQ(mustEnumerate(*C, {}), Expect);
}

TEST(HsmTest, AdditionLengthMismatchFails) {
  FactEnv F;
  Hsm A = Hsm::leaf(Poly(0), Poly(6), Poly(1));
  Hsm B = Hsm::leaf(Poly(0), Poly(5), Poly(1));
  EXPECT_FALSE(hsmAdd(A, B, F).has_value());
}

TEST(HsmTest, ScaleMultipliesBaseAndStrides) {
  Hsm A = Hsm::leaf(Poly(1), Poly(4), Poly(2));
  Hsm B = hsmScale(A, Poly(3));
  EXPECT_EQ(mustEnumerate(B, {}), (std::vector<std::int64_t>{3, 9, 15, 21}));
}

TEST(HsmTest, PaperModulusExample) {
  // [12 : 15, 2] % 6 = <0,2,4> repeated five times (paper Section VIII-A).
  FactEnv F;
  Hsm A = Hsm::leaf(Poly(12), Poly(15), Poly(2));
  auto M = hsmMod(A, Poly(6), F);
  ASSERT_TRUE(M.has_value());
  std::vector<std::int64_t> Expect;
  for (int I = 0; I < 15; ++I)
    Expect.push_back((12 + 2 * I) % 6);
  EXPECT_EQ(mustEnumerate(*M, {}), Expect);
}

TEST(HsmTest, PaperDivisionExample) {
  // [20 : 6, 5] / 10 = <2,2,3,3,4,4> (paper Section VIII-A).
  FactEnv F;
  Hsm A = Hsm::leaf(Poly(20), Poly(6), Poly(5));
  auto D = hsmDiv(A, Poly(10), F);
  ASSERT_TRUE(D.has_value());
  EXPECT_EQ(mustEnumerate(*D, {}),
            (std::vector<std::int64_t>{2, 2, 3, 3, 4, 4}));
}

TEST(HsmTest, DivisionByStrideDivisor) {
  // [0 : 5, 10] / 5 = [0 : 5, 2].
  FactEnv F;
  Hsm A = Hsm::leaf(Poly(0), Poly(5), Poly(10));
  auto D = hsmDiv(A, Poly(5), F);
  ASSERT_TRUE(D.has_value());
  EXPECT_EQ(mustEnumerate(*D, {}), (std::vector<std::int64_t>{0, 2, 4, 6, 8}));
}

TEST(HsmTest, SymbolicModulusOfIdByNrows) {
  // [0 : np, 1] % nrows with np == nrows^2: concrete check at nrows=3.
  FactEnv F;
  ASSERT_TRUE(F.addRewrite("np", Poly::var("nrows").times(Poly::var("nrows"))));
  Hsm Id = Hsm::range(Poly(0), Poly::var("np"));
  auto M = hsmMod(Id, Poly::var("nrows"), F);
  ASSERT_TRUE(M.has_value());
  std::vector<std::int64_t> Expect;
  for (int I = 0; I < 9; ++I)
    Expect.push_back(I % 3);
  EXPECT_EQ(mustEnumerate(*M, {{"nrows", 3}, {"np", 9}}), Expect);
}

TEST(HsmTest, SymbolicDivisionOfIdByNrows) {
  FactEnv F;
  ASSERT_TRUE(F.addRewrite("np", Poly::var("nrows").times(Poly::var("nrows"))));
  Hsm Id = Hsm::range(Poly(0), Poly::var("np"));
  auto D = hsmDiv(Id, Poly::var("nrows"), F);
  ASSERT_TRUE(D.has_value());
  std::vector<std::int64_t> Expect;
  for (int I = 0; I < 9; ++I)
    Expect.push_back(I / 3);
  EXPECT_EQ(mustEnumerate(*D, {{"nrows", 3}, {"np", 9}}), Expect);
}

TEST(HsmTest, DivisionFailsWithoutFacts) {
  // Without np == nrows^2 the restructuring is impossible.
  FactEnv F;
  Hsm Id = Hsm::range(Poly(0), Poly::var("np"));
  EXPECT_FALSE(hsmDiv(Id, Poly::var("nrows"), F).has_value());
}

TEST(HsmTest, ModWithNonDivisibleConstantBase) {
  // [1 : 3, 6] % 6 = <1,1,1>: base remainder 1, stride divisible.
  FactEnv F;
  Hsm A = Hsm::leaf(Poly(1), Poly(3), Poly(6));
  auto M = hsmMod(A, Poly(6), F);
  ASSERT_TRUE(M.has_value());
  EXPECT_EQ(mustEnumerate(*M, {}), (std::vector<std::int64_t>{1, 1, 1}));
}

TEST(HsmTest, DivWithNonDivisibleConstantBase) {
  // [7 : 3, 6] / 6 = <1,2,3>.
  FactEnv F;
  Hsm A = Hsm::leaf(Poly(7), Poly(3), Poly(6));
  auto D = hsmDiv(A, Poly(6), F);
  ASSERT_TRUE(D.has_value());
  EXPECT_EQ(mustEnumerate(*D, {}), (std::vector<std::int64_t>{1, 2, 3}));
}

TEST(HsmTest, ModRejectsWindowCrossing) {
  // [0 : 4, 3] % 6: values 0,3,6,9 -> 0,3,0,3 crosses windows with stride
  // not dividing 6 and span 9 > 5; must fail (no silent wrong answer).
  FactEnv F;
  Hsm A = Hsm::leaf(Poly(0), Poly(4), Poly(3));
  auto M = hsmMod(A, Poly(6), F);
  if (M) {
    // If a rule fired it must still be correct.
    std::vector<std::int64_t> Expect = {0, 3, 0, 3};
    EXPECT_EQ(mustEnumerate(*M, {}), Expect);
  }
}

TEST(HsmTest, NormalizeMergesAdjacentLevels) {
  // [[2 : 3, 2] : 2, 6] = [2 : 6, 2] (paper's sequence-equality example).
  FactEnv F;
  Hsm A = Hsm::leaf(Poly(2), Poly(3), Poly(2)).repeated(Poly(2), Poly(6));
  Hsm N = hsmNormalize(A, F);
  EXPECT_EQ(N, Hsm::leaf(Poly(2), Poly(6), Poly(2)));
}

TEST(HsmTest, NormalizeDropsUnitLevels) {
  FactEnv F;
  Hsm A = Hsm::leaf(Poly(5), Poly(1), Poly(9)).repeated(Poly(4), Poly(1));
  Hsm N = hsmNormalize(A, F);
  EXPECT_EQ(N, Hsm::leaf(Poly(5), Poly(4), Poly(1)));
}

TEST(HsmTest, SequenceEqualityPaperExample) {
  FactEnv F;
  Hsm A = Hsm::leaf(Poly(2), Poly(3), Poly(2)).repeated(Poly(2), Poly(6));
  Hsm B = Hsm::leaf(Poly(2), Poly(6), Poly(2));
  EXPECT_TRUE(hsmSequenceEquals(A, B, F));
}

TEST(HsmTest, SequenceInequalityWhenReordered) {
  FactEnv F;
  // [[2:3,4]:2,2] = <2,6,10,4,8,12> is set-equal but not sequence-equal
  // to [2:6,2] = <2,4,6,8,10,12> (paper's interleaving example).
  Hsm A = Hsm::leaf(Poly(2), Poly(3), Poly(4)).repeated(Poly(2), Poly(2));
  Hsm B = Hsm::leaf(Poly(2), Poly(6), Poly(2));
  EXPECT_FALSE(hsmSequenceEquals(A, B, F));
  EXPECT_TRUE(hsmSetEquals(A, B, F));
  // Sanity: same value multiset.
  auto SA = mustEnumerate(A, {});
  auto SB = mustEnumerate(B, {});
  std::sort(SA.begin(), SA.end());
  EXPECT_EQ(SA, SB);
}

TEST(HsmTest, SetEqualitySwapRule) {
  FactEnv F;
  // [[1:2,1]:3,10] ~ [[1:3,10]:2,1] (paper's swap example).
  Hsm A = Hsm::leaf(Poly(1), Poly(2), Poly(1)).repeated(Poly(3), Poly(10));
  Hsm B = Hsm::leaf(Poly(1), Poly(3), Poly(10)).repeated(Poly(2), Poly(1));
  EXPECT_TRUE(hsmSetEquals(A, B, F));
}

TEST(HsmTest, SetEqualityDifferentBasesFails) {
  FactEnv F;
  Hsm A = Hsm::leaf(Poly(0), Poly(4), Poly(1));
  Hsm B = Hsm::leaf(Poly(1), Poly(4), Poly(1));
  EXPECT_FALSE(hsmSetEquals(A, B, F));
}

TEST(HsmTest, SetEqualityDifferentSetsFails) {
  FactEnv F;
  Hsm A = Hsm::leaf(Poly(0), Poly(4), Poly(2)); // {0,2,4,6}
  Hsm B = Hsm::leaf(Poly(0), Poly(4), Poly(1)); // {0,1,2,3}
  EXPECT_FALSE(hsmSetEquals(A, B, F));
}

TEST(HsmTest, TransposeImageIsSurjective) {
  // [[0 : nrows, nrows] : nrows, 1] ~ [0 : np, 1] (Section VIII-B).
  FactEnv F;
  ASSERT_TRUE(F.addRewrite("np", Poly::var("nrows").times(Poly::var("nrows"))));
  Hsm Image = Hsm::leaf(Poly(0), Poly::var("nrows"), Poly::var("nrows"))
                  .repeated(Poly::var("nrows"), Poly(1));
  Hsm All = Hsm::range(Poly(0), Poly::var("np"));
  EXPECT_TRUE(hsmSetEquals(Image, All, F));
  EXPECT_FALSE(hsmSequenceEquals(Image, All, F));
}

TEST(HsmTest, RectTransposeImageIsSurjective) {
  // [[[0:2,1]:nrows,2*nrows]:nrows,2] ~ [0:np,1] with np == 2*nrows^2.
  FactEnv F;
  Poly N = Poly::var("nrows");
  ASSERT_TRUE(F.addRewrite("np", Poly(2).times(N).times(N)));
  Hsm Image = Hsm::leaf(Poly(0), Poly(2), Poly(1))
                  .repeated(N, Poly(2).times(N))
                  .repeated(N, Poly(2));
  Hsm All = Hsm::range(Poly(0), Poly::var("np"));
  EXPECT_TRUE(hsmSetEquals(Image, All, F));
}

//===----------------------------------------------------------------------===//
// Property sweep: symbolic div/mod agree with concrete arithmetic whenever
// a rule fires.
//===----------------------------------------------------------------------===//

struct DivModCase {
  std::int64_t Base, Repeat, Stride, Q;
};

class DivModProperty : public ::testing::TestWithParam<DivModCase> {};

TEST_P(DivModProperty, AgreesWithConcreteWhenDefined) {
  const auto &[BaseV, RepeatV, StrideV, QV] = GetParam();
  FactEnv F;
  Hsm A = Hsm::leaf(Poly(BaseV), Poly(RepeatV), Poly(StrideV));
  if (auto D = hsmDiv(A, Poly(QV), F)) {
    auto Seq = D->enumerate({});
    ASSERT_TRUE(Seq.has_value());
    for (std::int64_t I = 0; I < RepeatV; ++I)
      EXPECT_EQ((*Seq)[static_cast<size_t>(I)], (BaseV + I * StrideV) / QV)
          << "div base=" << BaseV << " r=" << RepeatV << " s=" << StrideV
          << " q=" << QV << " i=" << I;
  }
  if (auto M = hsmMod(A, Poly(QV), F)) {
    auto Seq = M->enumerate({});
    ASSERT_TRUE(Seq.has_value());
    for (std::int64_t I = 0; I < RepeatV; ++I)
      EXPECT_EQ((*Seq)[static_cast<size_t>(I)], (BaseV + I * StrideV) % QV)
          << "mod base=" << BaseV << " r=" << RepeatV << " s=" << StrideV
          << " q=" << QV << " i=" << I;
  }
}

std::vector<DivModCase> divModCases() {
  std::vector<DivModCase> Cases;
  for (std::int64_t Base : {0, 1, 5, 12, 20})
    for (std::int64_t Repeat : {1, 2, 3, 6, 8, 12})
      for (std::int64_t Stride : {0, 1, 2, 3, 5, 6})
        for (std::int64_t Q : {2, 3, 5, 6, 10})
          Cases.push_back({Base, Repeat, Stride, Q});
  return Cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, DivModProperty,
                         ::testing::ValuesIn(divModCases()));

} // namespace
