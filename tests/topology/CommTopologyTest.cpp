//===- tests/topology/CommTopologyTest.cpp - Pattern classification tests -----===//

#include "topology/CommTopology.h"

#include "cfg/CfgBuilder.h"
#include "lang/Corpus.h"
#include "lang/Parser.h"
#include "pcfg/Engine.h"

#include <gtest/gtest.h>

using namespace csdf;

namespace {

struct Analyzed {
  Program Prog;
  Cfg Graph;
  AnalysisResult Result;
};

Analyzed analyze(const std::string &Source, AnalysisOptions Opts) {
  Analyzed A;
  A.Prog = parseProgramOrDie(Source);
  A.Graph = buildCfg(A.Prog);
  A.Result = analyzeProgram(A.Graph, Opts);
  return A;
}

std::set<PatternKind> kindsOf(const std::vector<ClassifiedPattern> &Ps) {
  std::set<PatternKind> Kinds;
  for (const ClassifiedPattern &P : Ps)
    Kinds.insert(P.Kind);
  return Kinds;
}

TEST(CommTopologyTest, BroadcastClassifiesAsRootScatter) {
  Analyzed A = analyze(corpus::fanOutBroadcast(),
                       AnalysisOptions::simpleSymbolic());
  ASSERT_TRUE(A.Result.Converged);
  auto Patterns = classifyMatches(A.Graph, A.Result);
  ASSERT_EQ(Patterns.size(), 1u);
  EXPECT_EQ(Patterns[0].Kind, PatternKind::RootScatter);
}

TEST(CommTopologyTest, GatherClassifiesAsRootGather) {
  Analyzed A =
      analyze(corpus::gatherToRoot(), AnalysisOptions::simpleSymbolic());
  ASSERT_TRUE(A.Result.Converged);
  auto Patterns = classifyMatches(A.Graph, A.Result);
  ASSERT_EQ(Patterns.size(), 1u);
  EXPECT_EQ(Patterns[0].Kind, PatternKind::RootGather);
}

TEST(CommTopologyTest, ExchangeWithRootDetected) {
  // The E2 headline claim: the mdcask pattern is scatter + gather with the
  // same root.
  Analyzed A =
      analyze(corpus::exchangeWithRoot(), AnalysisOptions::simpleSymbolic());
  ASSERT_TRUE(A.Result.Converged);
  auto Patterns = classifyMatches(A.Graph, A.Result);
  EXPECT_TRUE(hasExchangeWithRoot(Patterns));
}

TEST(CommTopologyTest, TransposeClassified) {
  Analyzed A =
      analyze(corpus::transposeSquare(), AnalysisOptions::cartesian());
  ASSERT_TRUE(A.Result.Converged);
  auto Patterns = classifyMatches(A.Graph, A.Result);
  ASSERT_EQ(Patterns.size(), 1u);
  EXPECT_EQ(Patterns[0].Kind, PatternKind::TransposeLike);
}

TEST(CommTopologyTest, ShiftClassified) {
  AnalysisOptions Opts = AnalysisOptions::cartesian();
  Opts.FixedNp = 6;
  Analyzed A = analyze(corpus::neighborShift(), Opts);
  ASSERT_TRUE(A.Result.Converged);
  auto Kinds = kindsOf(classifyMatches(A.Graph, A.Result));
  EXPECT_TRUE(Kinds.count(PatternKind::ShiftRight));
  EXPECT_FALSE(Kinds.count(PatternKind::ShiftLeft));
}

TEST(CommTopologyTest, LeftShiftClassified) {
  AnalysisOptions Opts = AnalysisOptions::cartesian();
  Opts.FixedNp = 6;
  Analyzed A = analyze(corpus::neighborShiftLeft(), Opts);
  ASSERT_TRUE(A.Result.Converged);
  auto Kinds = kindsOf(classifyMatches(A.Graph, A.Result));
  EXPECT_TRUE(Kinds.count(PatternKind::ShiftLeft));
}

TEST(CommTopologyTest, Figure2IsPointToPoint) {
  Analyzed A =
      analyze(corpus::figure2Exchange(), AnalysisOptions::simpleSymbolic());
  ASSERT_TRUE(A.Result.Converged);
  auto Kinds = kindsOf(classifyMatches(A.Graph, A.Result));
  EXPECT_EQ(Kinds, std::set<PatternKind>{PatternKind::PointToPoint});
}

TEST(CommTopologyTest, ValidationExactOnConvergedPrograms) {
  for (const char *Name : {"fan-out-broadcast", "gather-to-root",
                           "exchange-with-root", "figure2-exchange"}) {
    std::string Source;
    for (const auto &P : corpus::allPatterns())
      if (P.Name == Name)
        Source = P.Source;
    ASSERT_FALSE(Source.empty()) << Name;
    Analyzed A = analyze(Source, AnalysisOptions::simpleSymbolic());
    ASSERT_TRUE(A.Result.Converged) << Name;
    RunOptions Opts;
    Opts.NumProcs = 8;
    RunResult Run = runProgram(A.Graph, Opts);
    ASSERT_TRUE(Run.finished()) << Name;
    ValidationReport Report = validateTopology(A.Result, Run);
    EXPECT_TRUE(Report.Exact) << Name << ": " << Report.str(A.Graph);
  }
}

TEST(CommTopologyTest, ValidationFlagsMissingPairs) {
  // An empty analysis result against a real trace must report misses.
  Analyzed A =
      analyze(corpus::fanOutBroadcast(), AnalysisOptions::simpleSymbolic());
  RunOptions Opts;
  Opts.NumProcs = 4;
  RunResult Run = runProgram(A.Graph, Opts);
  AnalysisResult Empty;
  ValidationReport Report = validateTopology(Empty, Run);
  EXPECT_FALSE(Report.Exact);
  EXPECT_FALSE(Report.MissedPairs.empty());
}

TEST(CommTopologyTest, DotContainsMatchedEdges) {
  Analyzed A =
      analyze(corpus::figure2Exchange(), AnalysisOptions::simpleSymbolic());
  ASSERT_TRUE(A.Result.Converged);
  std::string Dot = topologyToDot(A.Graph, A.Result, "fig2");
  EXPECT_NE(Dot.find("digraph fig2"), std::string::npos);
  for (const auto &[S, R] : A.Result.matchedNodePairs()) {
    std::string Edge =
        "n" + std::to_string(S) + " -> n" + std::to_string(R);
    EXPECT_NE(Dot.find(Edge), std::string::npos);
  }
}

TEST(CommTopologyTest, PatternKindNamesAreStable) {
  EXPECT_STREQ(patternKindName(PatternKind::RootScatter), "root-scatter");
  EXPECT_STREQ(patternKindName(PatternKind::TransposeLike),
               "transpose-like");
  EXPECT_STREQ(patternKindName(PatternKind::Unknown), "unknown");
}

} // namespace
