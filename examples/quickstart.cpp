//===- examples/quickstart.cpp - Figure 2 end to end ---------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The paper's Figure 2 as a five-minute tour of the library:
//
//   1. parse an MPL program (processes 0 and 1 exchange a value),
//   2. build its CFG,
//   3. run the pCFG dataflow analysis (Section VI) with the simple
//      symbolic client (Section VII),
//   4. show the detected communication topology and the constant the
//      analysis proves both processes print,
//   5. execute the program concretely and check the static matches
//      against the dynamic trace.
//
//===----------------------------------------------------------------------===//

#include "cfg/CfgBuilder.h"
#include "dataflow/SeqAnalyses.h"
#include "interp/Interpreter.h"
#include "lang/Corpus.h"
#include "lang/Parser.h"
#include "pcfg/Engine.h"
#include "topology/CommTopology.h"

#include <cstdio>

using namespace csdf;

int main() {
  std::printf("=== csdf quickstart: the paper's Figure 2 ===\n\n");
  std::string Source = corpus::figure2Exchange();
  std::printf("program:\n%s\n", Source.c_str());

  Program Prog = parseProgramOrDie(Source);
  Cfg Graph = buildCfg(Prog);

  AnalysisResult Result =
      analyzeProgram(Graph, AnalysisOptions::simpleSymbolic());
  std::printf("analysis: %s (%u states explored)\n",
              Result.Converged ? "converged" : "gave up (Top)",
              Result.StatesExplored);

  std::printf("\ncommunication topology (statically matched):\n");
  for (const MatchRecord &M : Result.Matches)
    std::printf("  %-24s ->  %-24s   senders %s, receivers %s\n",
                Graph.nodeLabel(M.SendNode).c_str(),
                Graph.nodeLabel(M.RecvNode).c_str(), M.SenderRange.c_str(),
                M.ReceiverRange.c_str());

  std::printf("\nconstant propagation across processes:\n");
  for (const PrintFact &F : Result.PrintFacts) {
    if (F.Value)
      std::printf("  processes %s provably print %lld at %s\n",
                  F.SetRange.c_str(), static_cast<long long>(*F.Value),
                  Graph.nodeLabel(F.Node).c_str());
    else
      std::printf("  processes %s print an unknown value at %s\n",
                  F.SetRange.c_str(), Graph.nodeLabel(F.Node).c_str());
  }

  // The paper's contrast: a traditional per-process constant propagation
  // sees `recv` as an unknown value and proves nothing here.
  auto Syms = std::make_shared<SymbolTable>();
  auto Seq = computeSeqConstants(Graph, Syms);
  unsigned SeqProved = 0;
  for (const CfgNode &N : Graph.nodes())
    if (N.Kind == CfgNodeKind::Print && seqConstantAt(Seq, *Syms, N.Id, "y"))
      ++SeqProved;
  std::printf("\ntraditional sequential constant propagation proves %u of "
              "2 prints\n(\"neither task can be accomplished by "
              "traditional analyses\")\n",
              SeqProved);

  std::printf("\nground truth (interpreter, np = 8):\n");
  RunOptions Opts;
  Opts.NumProcs = 8;
  RunResult Run = runProgram(Graph, Opts);
  std::printf("  run %s; process 0 printed %lld, process 1 printed %lld\n",
              runStatusName(Run.Status),
              static_cast<long long>(Run.Prints[0].at(0)),
              static_cast<long long>(Run.Prints[1].at(0)));

  ValidationReport Report = validateTopology(Result, Run);
  std::printf("  static vs dynamic topology: %s\n",
              Report.str(Graph).c_str());
  return Report.Exact && Result.Converged ? 0 : 1;
}
