//===- examples/mdcask_exchange.cpp - Figures 1 and 5 --------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The mdcask molecular-dynamics kernel from the paper's introduction
// (Figure 1): process 0 exchanges a message with every other process.
// The paper's headline optimization claim is that once the analysis
// detects this exchange-with-root pattern, the code can be condensed into
// collective operations.
//
// This example runs the Section VII client on both phases of the kernel
// symbolically (any np), shows the loop-invariant process sets of
// Figure 5, classifies the detected patterns, and cross-checks against
// concrete executions at several process counts.
//
//===----------------------------------------------------------------------===//

#include "cfg/CfgBuilder.h"
#include "interp/Interpreter.h"
#include "lang/Corpus.h"
#include "lang/Parser.h"
#include "pcfg/Engine.h"
#include "topology/CommTopology.h"

#include <cstdio>

using namespace csdf;

static bool analyzeKernel(const char *Title, const std::string &Source) {
  std::printf("--- %s ---\n%s\n", Title, Source.c_str());
  Program Prog = parseProgramOrDie(Source);
  Cfg Graph = buildCfg(Prog);

  AnalysisResult Result =
      analyzeProgram(Graph, AnalysisOptions::simpleSymbolic());
  std::printf("analysis: %s, %u states, max %u process sets\n",
              Result.Converged ? "converged" : "Top",
              Result.StatesExplored, Result.MaxSetsSeen);

  for (const MatchRecord &M : Result.Matches)
    std::printf("  match: %-22s -> %-22s  %s -> %s\n",
                Graph.nodeLabel(M.SendNode).c_str(),
                Graph.nodeLabel(M.RecvNode).c_str(), M.SenderRange.c_str(),
                M.ReceiverRange.c_str());

  std::vector<ClassifiedPattern> Patterns = classifyMatches(Graph, Result);
  for (const ClassifiedPattern &P : Patterns)
    std::printf("  pattern: %-14s %s\n", patternKindName(P.Kind),
                P.Description.c_str());
  if (hasExchangeWithRoot(Patterns))
    std::printf("  => exchange-with-root detected: collective "
                "broadcast+gather transformation applies\n");

  bool AllExact = Result.Converged;
  for (int NP : {4, 7, 16}) {
    RunOptions Opts;
    Opts.NumProcs = NP;
    RunResult Run = runProgram(Graph, Opts);
    ValidationReport Report = validateTopology(Result, Run);
    std::printf("  np=%-3d run=%s  validation=%s\n", NP,
                runStatusName(Run.Status), Report.str(Graph).c_str());
    AllExact = AllExact && Report.Exact && Run.finished();
  }
  std::printf("\n");
  return AllExact;
}

int main() {
  std::printf("=== mdcask (ASCI Purple) root-communication kernels ===\n\n");
  bool Ok = true;
  Ok &= analyzeKernel("phase 1: gather to root (Figure 1)",
                      corpus::gatherToRoot());
  Ok &= analyzeKernel("phase 2: exchange with root (Figures 1/5)",
                      corpus::exchangeWithRoot());
  Ok &= analyzeKernel("fan-out broadcast (Section IX workload)",
                      corpus::fanOutBroadcast());
  std::printf(Ok ? "all kernels detected and validated exactly\n"
                 : "some kernel failed validation\n");
  return Ok ? 0 : 1;
}
