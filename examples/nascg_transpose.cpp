//===- examples/nascg_transpose.cpp - Figure 6 ---------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The NAS-CG transpose kernel of Figure 6: each process exchanges a value
// with its transpose position on an nrows x ncols process grid, where the
// grid is square or 1:2 rectangular. Matching these sends and receives
// requires the Hierarchical Sequence Map abstraction of Section VIII —
// the expressions use *, / and %, far beyond the `var + c` fragment.
//
// The analysis here is fully symbolic: one run covers every grid size
// satisfying the assume facts. Concrete runs at several sizes validate.
//
//===----------------------------------------------------------------------===//

#include "cfg/CfgBuilder.h"
#include "interp/Interpreter.h"
#include "lang/Corpus.h"
#include "lang/Parser.h"
#include "pcfg/Engine.h"
#include "topology/CommTopology.h"

#include <cstdio>

using namespace csdf;

int main() {
  std::printf("=== NAS-CG transpose exchange (Figure 6) ===\n\n");
  std::string Source = corpus::nascgTranspose();
  std::printf("program:\n%s\n", Source.c_str());

  Program Prog = parseProgramOrDie(Source);
  Cfg Graph = buildCfg(Prog);

  // The cartesian client: HSM matcher + buffered sends (everyone sends
  // before anyone receives, so blocking-send matching cannot apply).
  AnalysisResult Result = analyzeProgram(Graph, AnalysisOptions::cartesian());
  std::printf("analysis: %s, %u states\n",
              Result.Converged ? "converged" : "Top", Result.StatesExplored);
  for (const MatchRecord &M : Result.Matches)
    std::printf("  match: %s -> %s\n", Graph.nodeLabel(M.SendNode).c_str(),
                Graph.nodeLabel(M.RecvNode).c_str());
  for (const ClassifiedPattern &P : classifyMatches(Graph, Result))
    std::printf("  pattern: %-14s %s\n", patternKindName(P.Kind),
                P.Description.c_str());

  // For contrast: the Section VII client alone cannot match these.
  AnalysisOptions NoHsm = AnalysisOptions::cartesian();
  NoHsm.UseHsmMatcher = false;
  AnalysisResult Weak = analyzeProgram(Graph, NoHsm);
  std::printf("\nwithout HSMs the framework %s (as expected: '%s')\n",
              Weak.Converged ? "unexpectedly converged" : "passes Top",
              Weak.TopReason.c_str());

  struct GridCase {
    int NRows, NCols;
  };
  bool Ok = Result.Converged && !Weak.Converged;
  std::printf("\nvalidation against concrete grids:\n");
  for (GridCase G : {GridCase{3, 3}, GridCase{4, 4}, GridCase{2, 4},
                     GridCase{3, 6}}) {
    RunOptions Opts;
    Opts.NumProcs = G.NRows * G.NCols;
    Opts.Params = {{"nrows", G.NRows}, {"ncols", G.NCols}};
    RunResult Run = runProgram(Graph, Opts);
    ValidationReport Report = validateTopology(Result, Run);
    // One grid shape exercises one branch; the other branch's match pair
    // stays unobserved in that run, which the report calls out.
    bool Sound = Report.MissedPairs.empty() && Run.finished();
    std::printf("  %dx%d grid (np=%d): run=%s, soundness=%s\n", G.NRows,
                G.NCols, Opts.NumProcs, runStatusName(Run.Status),
                Sound ? "ok" : "VIOLATED");
    Ok = Ok && Sound;
  }
  std::printf(Ok ? "\ntranspose detected symbolically for all grid shapes\n"
                 : "\nFAILED\n");
  return Ok ? 0 : 1;
}
