//===- examples/memory_sharing.cpp - The constant-sharing client ---------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The paper's third motivating client (Section I): "Distributed-memory
// applications can waste memory on multi-core hardware by having multiple
// processes keep private copies of identical data. By instantiating the
// framework with a traditional constant propagation and dependence
// analyses, we can reduce application memory footprint by sharing common
// read-only data among different processes."
//
// This example broadcasts a configuration value, computes derived data,
// and asks the client which variables provably hold one identical
// constant on every process — those need only one shared copy per node.
//
//===----------------------------------------------------------------------===//

#include "analysis/Clients.h"
#include "cfg/CfgBuilder.h"
#include "interp/Interpreter.h"
#include "lang/Parser.h"

#include <cstdio>

using namespace csdf;

int main() {
  std::printf("=== memory-footprint reduction via shared constants ===\n\n");
  std::string Source = R"mpl(
# Root reads a configuration constant and broadcasts it; every process
# derives the same table size from it. The per-process slice differs.
if id == 0 then
  config = 1024;
  for i = 1 to np - 1 do
    send config -> i;
  end
else
  recv config <- 0;
end
tablesize = config * 8;
myslice = id * 100;
)mpl";
  std::printf("program:\n%s\n", Source.c_str());

  Program Prog = parseProgramOrDie(Source);
  Cfg Graph = buildCfg(Prog);
  ClientReport Report = runClients(Graph, AnalysisOptions::sectionX());

  std::printf("analysis: %s\n",
              Report.Analysis.Converged ? "converged" : "Top");
  std::printf("\nshareable read-only data (one copy per node suffices):\n");
  for (const auto &[Var, Value] : Report.ShareableConstants)
    std::printf("  %-10s == %lld on every process\n", Var.c_str(),
                static_cast<long long>(Value));

  bool ConfigShared = false;
  bool TableShared = false;
  bool SliceShared = false;
  for (const auto &[Var, Value] : Report.ShareableConstants) {
    ConfigShared |= Var == "config" && Value == 1024;
    TableShared |= Var == "tablesize" && Value == 8192;
    SliceShared |= Var == "myslice";
  }
  std::printf("\nper-process data (must stay private):\n");
  std::printf("  myslice  (= id * 100, differs per rank)%s\n",
              SliceShared ? "  [WRONGLY SHARED!]" : "");

  // Ground truth: run and check every process really holds the constants.
  RunOptions Opts;
  Opts.NumProcs = 6;
  RunResult Run = runProgram(Graph, Opts);
  bool RuntimeAgrees = Run.finished();
  for (int Rank = 0; Rank < 6 && RuntimeAgrees; ++Rank)
    RuntimeAgrees = Run.FinalVars[Rank].at("config") == 1024 &&
                    Run.FinalVars[Rank].at("tablesize") == 8192;
  std::printf("\nruntime check (np=6): %s\n",
              RuntimeAgrees ? "all processes hold config=1024, "
                              "tablesize=8192"
                            : "MISMATCH");

  bool Ok = Report.Analysis.Converged && ConfigShared && TableShared &&
            !SliceShared && RuntimeAgrees;
  std::printf(Ok ? "\n2 of 3 variables shareable; footprint reduced\n"
                 : "\nFAILED\n");
  return Ok ? 0 : 1;
}
