//===- examples/bug_hunt.cpp - Static communication bug detection --------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The paper's "Error Detection and Verification" client (Section I):
// instantiating the framework turns unmatched communication into bug
// reports — message leaks (sent, never received), head-to-head deadlocks,
// and tag mismatches. Each static verdict is confirmed by executing the
// buggy program in the interpreter.
//
//===----------------------------------------------------------------------===//

#include "cfg/CfgBuilder.h"
#include "interp/Interpreter.h"
#include "lang/Corpus.h"
#include "lang/Parser.h"
#include "pcfg/Engine.h"

#include <cstdio>

using namespace csdf;

namespace {

bool hunt(const char *Title, const std::string &Source,
          AnalysisBug::Kind Expected, RunStatus ExpectedRun) {
  std::printf("--- %s ---\n%s\n", Title, Source.c_str());
  Program Prog = parseProgramOrDie(Source);
  Cfg Graph = buildCfg(Prog);

  AnalysisResult Result = analyzeProgram(Graph, AnalysisOptions::cartesian());
  std::printf("static verdict: %s\n",
              Result.Converged ? "converged" : "Top (cannot match)");
  bool Found = false;
  for (const AnalysisBug &B : Result.Bugs) {
    std::printf("  bug [%s]: %s\n", analysisBugKindName(B.TheKind),
                B.Detail.c_str());
    Found |= B.TheKind == Expected;
  }

  RunOptions Opts;
  Opts.NumProcs = 4;
  RunResult Run = runProgram(Graph, Opts);
  std::printf("dynamic confirmation: %s", runStatusName(Run.Status));
  for (const LeakedMessage &L : Run.Leaks)
    std::printf("; leaked message %lld from rank %d to rank %d",
                static_cast<long long>(L.Value), L.Sender, L.Receiver);
  std::printf("\n\n");

  return Found && Run.Status == ExpectedRun;
}

} // namespace

int main() {
  std::printf("=== static bug hunting with the pCFG framework ===\n\n");
  bool Ok = true;
  Ok &= hunt("message leak: second send never received",
             corpus::messageLeak(), AnalysisBug::Kind::MessageLeak,
             RunStatus::Finished);
  Ok &= hunt("head-to-head deadlock: both sides receive first",
             corpus::headToHeadDeadlock(),
             AnalysisBug::Kind::PossibleDeadlock, RunStatus::Deadlock);
  Ok &= hunt("tag mismatch: the channel head never matches",
             corpus::tagMismatch(), AnalysisBug::Kind::TagMismatch,
             RunStatus::Deadlock);
  std::printf(Ok ? "all three bugs detected statically and confirmed "
                   "dynamically\n"
                 : "FAILED\n");
  return Ok ? 0 : 1;
}
