//===- examples/neighbor_shift.cpp - Figures 7/8 -------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The 1-D nearest-neighbor shift of Figure 7: interior processes receive
// from the left and send to the right; the edges only send or only
// receive (2d+1 = 3 roles for d = 1).
//
// Two views, mirroring the paper:
//   * Section VIII-C's expression-level proofs: the HSM machinery shows
//     (id-1) o (id+1) is the identity on each of the three domains and
//     that the send image covers the receivers — fully symbolically;
//   * the whole-program pCFG analysis, which needs a concrete np because
//     the pipeline's progress is not named by any program variable.
//
//===----------------------------------------------------------------------===//

#include "cfg/CfgBuilder.h"
#include "hsm/HsmExpr.h"
#include "interp/Interpreter.h"
#include "lang/Corpus.h"
#include "lang/Parser.h"
#include "pcfg/Engine.h"
#include "topology/CommTopology.h"

#include <cstdio>

using namespace csdf;

int main() {
  std::printf("=== 1-D nearest-neighbor shift (Figures 7/8) ===\n\n");

  // Expression-level HSM proofs (symbolic in np). The three matched
  // blocks of Figure 8: [0]->[1], [1..np-3]->[2..np-2], [np-2]->[np-1].
  Program ExprHolder = parseProgramOrDie("send x -> id + 1;\n"
                                         "recv y <- id - 1;\n");
  Cfg ExprGraph = buildCfg(ExprHolder);
  const Expr *SendE = nullptr;
  const Expr *RecvE = nullptr;
  for (const CfgNode &N : ExprGraph.nodes()) {
    if (N.Kind == CfgNodeKind::Send)
      SendE = N.Partner;
    if (N.Kind == CfgNodeKind::Recv)
      RecvE = N.Partner;
  }
  FactEnv Facts;
  Poly Np = Poly::var("np");
  struct Block {
    const char *Name;
    Poly SLo, SCount, RLo, RCount;
  };
  Block Blocks[] = {
      {"[0] -> [1]", Poly(0), Poly(1), Poly(1), Poly(1)},
      {"[1..np-3] -> [2..np-2]", Poly(1), Np.minus(Poly(3)), Poly(2),
       Np.minus(Poly(3))},
      {"[np-2] -> [np-1]", Np.minus(Poly(2)), Poly(1), Np.minus(Poly(1)),
       Poly(1)},
  };
  std::printf("symbolic HSM proofs for (send id+1, recv id-1):\n");
  bool Ok = true;
  for (const Block &B : Blocks) {
    bool Match =
        hsmFullSetMatch(SendE, B.SLo, B.SCount, RecvE, B.RLo, B.RCount, Facts);
    std::printf("  %-26s %s\n", B.Name, Match ? "matched" : "FAILED");
    Ok = Ok && Match;
  }

  // Whole-program analysis at concrete process counts.
  std::printf("\nwhole-program pCFG analysis (pipelined, fixed np):\n");
  Program Prog = parseProgramOrDie(corpus::neighborShift());
  Cfg Graph = buildCfg(Prog);
  for (int NP : {4, 6, 9}) {
    AnalysisOptions Opts = AnalysisOptions::cartesian();
    Opts.FixedNp = NP;
    AnalysisResult Result = analyzeProgram(Graph, Opts);
    RunOptions RunOpts;
    RunOpts.NumProcs = NP;
    RunResult Run = runProgram(Graph, RunOpts);
    ValidationReport Report = validateTopology(Result, Run);
    std::printf("  np=%d: %s, %zu matched pairs, validation=%s\n", NP,
                Result.Converged ? "converged" : "Top",
                Result.matchedNodePairs().size(),
                Report.Exact ? "exact" : Report.str(Graph).c_str());
    Ok = Ok && Result.Converged && Report.Exact;
  }

  // Both directions back to back: the full exchange.
  std::printf("\n1-D exchange (both shifts), np=5:\n");
  Program Prog2 = parseProgramOrDie(corpus::neighborExchange1D());
  Cfg Graph2 = buildCfg(Prog2);
  AnalysisOptions Opts2 = AnalysisOptions::cartesian();
  Opts2.FixedNp = 5;
  AnalysisResult R2 = analyzeProgram(Graph2, Opts2);
  for (const ClassifiedPattern &P : classifyMatches(Graph2, R2))
    std::printf("  pattern: %-12s %s\n", patternKindName(P.Kind),
                P.Description.c_str());
  Ok = Ok && R2.Converged;

  std::printf(Ok ? "\nall shift matchings verified\n" : "\nFAILED\n");
  return Ok ? 0 : 1;
}
