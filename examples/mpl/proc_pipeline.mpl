# Procedure-structured pipeline: a scatter phase and a report phase as
# named procedures called from the main body. Procedures are the unit of
# the incremental pipeline — edit one body and `csdf lsp` / `csdf serve`
# re-analyze with the prior engine trace as a seed, recomputing only the
# steps the edit touches.
# Try: csdf analyze examples/mpl/proc_pipeline.mpl --format json
proc scatter do
  if id == 0 then
    x = 42;
    for i = 1 to np - 1 do
      send x -> i;
    end
  else
    recv y <- 0;
  end
end
proc report do
  if id > 0 then
    print y;
  end
end
call scatter;
call report;
