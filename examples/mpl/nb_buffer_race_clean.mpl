# Clean twin of nb_buffer_race: the read happens after the wait, so the
# buffer is stable. No request-lifecycle findings.
if id == 0 then
  irecv x <- 1 req r;
  wait r;
  print x;
else
  if id == 1 then
    send 1 -> 0;
  end
end
