# Send to self: the partner expression is provably the sender's own rank.
# Works only under buffered send semantics; deadlocks under rendezvous.
# Try: csdf lint examples/mpl/self_send.mpl
x = 7;
send x -> id;
recv y <- id;
print y;
