# BUG (match-nondet): ranks 1 and 2 both send to rank 0, which receives
# with the `any` wildcard — which message arrives first depends on timing.
if id == 0 then
  recv x <- any;
  recv y <- any;
  print x + y;
else
  if id < 3 then
    send id -> 0;
  end
end
