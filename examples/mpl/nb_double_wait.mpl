# BUG (double-wait): rank 0 waits twice on the same posting of r; the
# second wait operates on an already-completed request.
if id == 0 then
  irecv x <- 1 req r;
  wait r;
  wait r;
else
  if id == 1 then
    send 1 -> 0;
  end
end
