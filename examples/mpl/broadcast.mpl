# Fan-out broadcast: process 0 distributes a value to everyone.
# Try: csdf analyze examples/mpl/broadcast.mpl --client linear --validate
if id == 0 then
  x = 42;
  for i = 1 to np - 1 do
    send x -> i;
  end
else
  recv y <- 0;
  print y;
end
