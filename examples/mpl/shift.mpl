# 1-D nearest-neighbor shift (Figure 7).
# Try: csdf analyze examples/mpl/shift.mpl --fixed-np 8 --np 8 --validate
x = id;
if id == 0 then
  send x -> id + 1;
elif id == np - 1 then
  recv y <- id - 1;
else
  recv y <- id - 1;
  send x -> id + 1;
end
