# Constant tag mismatch: the send uses tag 1 but the only receive insists
# on tag 2, so the message can never be consumed.
# Try: csdf lint examples/mpl/tag_mismatch.mpl
if id == 0 then
  x = 5;
  send x -> 1 tag 1;
elif id == 1 then
  recv y <- 0 tag 2;
end
