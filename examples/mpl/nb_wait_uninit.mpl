# BUG (wait-uninit): rank 0 waits on r before any isend/irecv posts it.
if id == 0 then
  wait r;
  irecv x <- 1 req r;
  wait r;
else
  if id == 1 then
    send 1 -> 0;
  end
end
