# Out-of-bounds partner ranks: `np` is one past the last valid rank, and
# a constant-folded negative rank can never exist.
# Try: csdf lint examples/mpl/oob_partner.mpl
x = id;
if id == 0 then
  send x -> np;
  recv y <- 0 - 1;
end
