# Clean twin of any_source_race: exactly one statically eligible sender,
# so the wildcard receive is deterministic and matches exactly.
if id == 0 then
  recv x <- any;
  print x;
else
  if id == 1 then
    send 5 -> 0;
  end
end
