# Unreachable code: the loop condition is constantly true, so the print
# after the loop can never execute.
# Try: csdf lint examples/mpl/unreachable.mpl
x = 0;
while true do
  x = x + 1;
end
print x;
