# Use before initialization: `total` is only assigned on the id == 0 path,
# but every process prints it.
# Try: csdf lint examples/mpl/use_before_init.mpl
if id == 0 then
  total = 1;
end
print total;
