# NAS-CG square transpose (Figure 6).
# Try: csdf analyze examples/mpl/transpose.mpl --validate --np 16 --param nrows=4
assume np == nrows * nrows;
x = id + 100;
send x -> (id % nrows) * nrows + id / nrows;
recv y <- (id % nrows) * nrows + id / nrows;
