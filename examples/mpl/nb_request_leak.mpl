# BUG (request-leak): the irecv request is never waited on, so the posted
# receive never completes and rank 1's message is never consumed.
if id == 0 then
  irecv x <- 1 req r;
else
  if id == 1 then
    send 1 -> 0;
  end
end
