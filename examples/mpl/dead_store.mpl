# Dead stores: the first assignment to x is overwritten before any read,
# and `unused` is never read at all.
# Try: csdf lint examples/mpl/dead_store.mpl
x = 1;
x = 2;
if id == 0 then
  send x -> 1;
elif id == 1 then
  recv y <- 0;
  print y;
end
unused = x + 1;
