# Non-blocking fan-out: rank 0 posts two isends and completes both with a
# single waitall; ranks 1 and 2 receive normally.
if id == 0 then
  isend 10 -> 1 req s1;
  isend 20 -> 2 req s2;
  waitall;
else
  if id < 3 then
    recv v <- 0;
    print v;
  end
end
