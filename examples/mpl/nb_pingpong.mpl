# Non-blocking ping: rank 0 isends to rank 1; each side completes its
# request with a wait. Clean under every request-lifecycle check.
# Try: csdf run examples/mpl/nb_pingpong.mpl
if id == 0 then
  isend 7 -> 1 req s;
  wait s;
else
  if id == 1 then
    irecv x <- 0 req r;
    wait r;
    print x;
  end
end
