# BUG (buffer-race): rank 0 reads the irecv buffer before the completing
# wait, racing with message delivery. The interpreter rejects the read.
if id == 0 then
  irecv x <- 1 req r;
  print x;
  wait r;
else
  if id == 1 then
    send 1 -> 0;
  end
end
