# A message leak: the second send is never received.
# Try: csdf analyze examples/mpl/leak.mpl ; csdf run examples/mpl/leak.mpl --np 2
if id == 0 then
  x = 1;
  send x -> 1;
  send x -> 1;
elif id == 1 then
  recv y <- 0;
end
