# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mdcask_exchange "/root/repo/build/examples/mdcask_exchange")
set_tests_properties(example_mdcask_exchange PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_nascg_transpose "/root/repo/build/examples/nascg_transpose")
set_tests_properties(example_nascg_transpose PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_neighbor_shift "/root/repo/build/examples/neighbor_shift")
set_tests_properties(example_neighbor_shift PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bug_hunt "/root/repo/build/examples/bug_hunt")
set_tests_properties(example_bug_hunt PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_memory_sharing "/root/repo/build/examples/memory_sharing")
set_tests_properties(example_memory_sharing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_check "/root/repo/build/tools/csdf" "check" "/root/repo/examples/mpl/broadcast.mpl")
set_tests_properties(cli_check PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_analyze_broadcast "/root/repo/build/tools/csdf" "analyze" "/root/repo/examples/mpl/broadcast.mpl" "--client" "linear" "--validate")
set_tests_properties(cli_analyze_broadcast PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_analyze_transpose "/root/repo/build/tools/csdf" "analyze" "/root/repo/examples/mpl/transpose.mpl" "--np" "16" "--param" "nrows=4" "--validate")
set_tests_properties(cli_analyze_transpose PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_analyze_shift "/root/repo/build/tools/csdf" "analyze" "/root/repo/examples/mpl/shift.mpl" "--fixed-np" "8" "--np" "8" "--validate")
set_tests_properties(cli_analyze_shift PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;32;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_run_leak "/root/repo/build/tools/csdf" "run" "/root/repo/examples/mpl/leak.mpl" "--np" "2")
set_tests_properties(cli_run_leak PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;35;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_cfg_dot "/root/repo/build/tools/csdf" "cfg" "/root/repo/examples/mpl/shift.mpl")
set_tests_properties(cli_cfg_dot PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;37;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_baseline "/root/repo/build/tools/csdf" "baseline" "/root/repo/examples/mpl/shift.mpl")
set_tests_properties(cli_baseline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;39;add_test;/root/repo/examples/CMakeLists.txt;0;")
