file(REMOVE_RECURSE
  "CMakeFiles/nascg_transpose.dir/nascg_transpose.cpp.o"
  "CMakeFiles/nascg_transpose.dir/nascg_transpose.cpp.o.d"
  "nascg_transpose"
  "nascg_transpose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nascg_transpose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
