# Empty dependencies file for nascg_transpose.
# This may be replaced when dependencies are built.
