file(REMOVE_RECURSE
  "CMakeFiles/neighbor_shift.dir/neighbor_shift.cpp.o"
  "CMakeFiles/neighbor_shift.dir/neighbor_shift.cpp.o.d"
  "neighbor_shift"
  "neighbor_shift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neighbor_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
