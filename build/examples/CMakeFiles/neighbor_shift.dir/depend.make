# Empty dependencies file for neighbor_shift.
# This may be replaced when dependencies are built.
