# Empty dependencies file for memory_sharing.
# This may be replaced when dependencies are built.
