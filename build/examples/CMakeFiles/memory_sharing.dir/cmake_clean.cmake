file(REMOVE_RECURSE
  "CMakeFiles/memory_sharing.dir/memory_sharing.cpp.o"
  "CMakeFiles/memory_sharing.dir/memory_sharing.cpp.o.d"
  "memory_sharing"
  "memory_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
