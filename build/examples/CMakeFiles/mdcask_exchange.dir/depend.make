# Empty dependencies file for mdcask_exchange.
# This may be replaced when dependencies are built.
