file(REMOVE_RECURSE
  "CMakeFiles/mdcask_exchange.dir/mdcask_exchange.cpp.o"
  "CMakeFiles/mdcask_exchange.dir/mdcask_exchange.cpp.o.d"
  "mdcask_exchange"
  "mdcask_exchange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdcask_exchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
