file(REMOVE_RECURSE
  "libcsdf_procset.a"
)
