# Empty compiler generated dependencies file for csdf_procset.
# This may be replaced when dependencies are built.
