file(REMOVE_RECURSE
  "CMakeFiles/csdf_procset.dir/ProcSet.cpp.o"
  "CMakeFiles/csdf_procset.dir/ProcSet.cpp.o.d"
  "libcsdf_procset.a"
  "libcsdf_procset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csdf_procset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
