# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("lang")
subdirs("cfg")
subdirs("interp")
subdirs("numeric")
subdirs("procset")
subdirs("hsm")
subdirs("dataflow")
subdirs("pcfg")
subdirs("analysis")
subdirs("topology")
subdirs("baseline")
