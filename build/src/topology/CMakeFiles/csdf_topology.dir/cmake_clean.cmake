file(REMOVE_RECURSE
  "CMakeFiles/csdf_topology.dir/CommTopology.cpp.o"
  "CMakeFiles/csdf_topology.dir/CommTopology.cpp.o.d"
  "libcsdf_topology.a"
  "libcsdf_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csdf_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
