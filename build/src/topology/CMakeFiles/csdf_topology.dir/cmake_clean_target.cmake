file(REMOVE_RECURSE
  "libcsdf_topology.a"
)
