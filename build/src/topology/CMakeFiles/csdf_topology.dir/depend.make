# Empty dependencies file for csdf_topology.
# This may be replaced when dependencies are built.
