# Empty compiler generated dependencies file for csdf_lang.
# This may be replaced when dependencies are built.
