file(REMOVE_RECURSE
  "CMakeFiles/csdf_lang.dir/Ast.cpp.o"
  "CMakeFiles/csdf_lang.dir/Ast.cpp.o.d"
  "CMakeFiles/csdf_lang.dir/AstPrinter.cpp.o"
  "CMakeFiles/csdf_lang.dir/AstPrinter.cpp.o.d"
  "CMakeFiles/csdf_lang.dir/Corpus.cpp.o"
  "CMakeFiles/csdf_lang.dir/Corpus.cpp.o.d"
  "CMakeFiles/csdf_lang.dir/ExprOps.cpp.o"
  "CMakeFiles/csdf_lang.dir/ExprOps.cpp.o.d"
  "CMakeFiles/csdf_lang.dir/Lexer.cpp.o"
  "CMakeFiles/csdf_lang.dir/Lexer.cpp.o.d"
  "CMakeFiles/csdf_lang.dir/Parser.cpp.o"
  "CMakeFiles/csdf_lang.dir/Parser.cpp.o.d"
  "CMakeFiles/csdf_lang.dir/Sema.cpp.o"
  "CMakeFiles/csdf_lang.dir/Sema.cpp.o.d"
  "CMakeFiles/csdf_lang.dir/Token.cpp.o"
  "CMakeFiles/csdf_lang.dir/Token.cpp.o.d"
  "libcsdf_lang.a"
  "libcsdf_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csdf_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
