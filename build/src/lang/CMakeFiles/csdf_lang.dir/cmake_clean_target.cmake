file(REMOVE_RECURSE
  "libcsdf_lang.a"
)
