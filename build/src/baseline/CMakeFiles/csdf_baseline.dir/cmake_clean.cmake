file(REMOVE_RECURSE
  "CMakeFiles/csdf_baseline.dir/MpiCfg.cpp.o"
  "CMakeFiles/csdf_baseline.dir/MpiCfg.cpp.o.d"
  "libcsdf_baseline.a"
  "libcsdf_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csdf_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
