file(REMOVE_RECURSE
  "libcsdf_baseline.a"
)
