# Empty compiler generated dependencies file for csdf_baseline.
# This may be replaced when dependencies are built.
