file(REMOVE_RECURSE
  "CMakeFiles/csdf_hsm.dir/Hsm.cpp.o"
  "CMakeFiles/csdf_hsm.dir/Hsm.cpp.o.d"
  "CMakeFiles/csdf_hsm.dir/HsmExpr.cpp.o"
  "CMakeFiles/csdf_hsm.dir/HsmExpr.cpp.o.d"
  "CMakeFiles/csdf_hsm.dir/Poly.cpp.o"
  "CMakeFiles/csdf_hsm.dir/Poly.cpp.o.d"
  "libcsdf_hsm.a"
  "libcsdf_hsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csdf_hsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
