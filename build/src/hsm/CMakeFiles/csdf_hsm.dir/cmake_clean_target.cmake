file(REMOVE_RECURSE
  "libcsdf_hsm.a"
)
