
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hsm/Hsm.cpp" "src/hsm/CMakeFiles/csdf_hsm.dir/Hsm.cpp.o" "gcc" "src/hsm/CMakeFiles/csdf_hsm.dir/Hsm.cpp.o.d"
  "/root/repo/src/hsm/HsmExpr.cpp" "src/hsm/CMakeFiles/csdf_hsm.dir/HsmExpr.cpp.o" "gcc" "src/hsm/CMakeFiles/csdf_hsm.dir/HsmExpr.cpp.o.d"
  "/root/repo/src/hsm/Poly.cpp" "src/hsm/CMakeFiles/csdf_hsm.dir/Poly.cpp.o" "gcc" "src/hsm/CMakeFiles/csdf_hsm.dir/Poly.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/csdf_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/csdf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
