# Empty compiler generated dependencies file for csdf_hsm.
# This may be replaced when dependencies are built.
