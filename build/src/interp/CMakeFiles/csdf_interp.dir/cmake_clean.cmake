file(REMOVE_RECURSE
  "CMakeFiles/csdf_interp.dir/Interpreter.cpp.o"
  "CMakeFiles/csdf_interp.dir/Interpreter.cpp.o.d"
  "libcsdf_interp.a"
  "libcsdf_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csdf_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
