file(REMOVE_RECURSE
  "libcsdf_interp.a"
)
