# Empty dependencies file for csdf_interp.
# This may be replaced when dependencies are built.
