
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/numeric/ConstraintGraph.cpp" "src/numeric/CMakeFiles/csdf_numeric.dir/ConstraintGraph.cpp.o" "gcc" "src/numeric/CMakeFiles/csdf_numeric.dir/ConstraintGraph.cpp.o.d"
  "/root/repo/src/numeric/DbmStorage.cpp" "src/numeric/CMakeFiles/csdf_numeric.dir/DbmStorage.cpp.o" "gcc" "src/numeric/CMakeFiles/csdf_numeric.dir/DbmStorage.cpp.o.d"
  "/root/repo/src/numeric/LinearExpr.cpp" "src/numeric/CMakeFiles/csdf_numeric.dir/LinearExpr.cpp.o" "gcc" "src/numeric/CMakeFiles/csdf_numeric.dir/LinearExpr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/csdf_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/csdf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
