file(REMOVE_RECURSE
  "CMakeFiles/csdf_numeric.dir/ConstraintGraph.cpp.o"
  "CMakeFiles/csdf_numeric.dir/ConstraintGraph.cpp.o.d"
  "CMakeFiles/csdf_numeric.dir/DbmStorage.cpp.o"
  "CMakeFiles/csdf_numeric.dir/DbmStorage.cpp.o.d"
  "CMakeFiles/csdf_numeric.dir/LinearExpr.cpp.o"
  "CMakeFiles/csdf_numeric.dir/LinearExpr.cpp.o.d"
  "libcsdf_numeric.a"
  "libcsdf_numeric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csdf_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
