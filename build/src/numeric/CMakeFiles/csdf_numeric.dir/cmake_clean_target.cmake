file(REMOVE_RECURSE
  "libcsdf_numeric.a"
)
