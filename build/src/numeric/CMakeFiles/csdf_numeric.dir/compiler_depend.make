# Empty compiler generated dependencies file for csdf_numeric.
# This may be replaced when dependencies are built.
