file(REMOVE_RECURSE
  "libcsdf_dataflow.a"
)
