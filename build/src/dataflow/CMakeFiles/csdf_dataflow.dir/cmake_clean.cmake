file(REMOVE_RECURSE
  "CMakeFiles/csdf_dataflow.dir/SeqAnalyses.cpp.o"
  "CMakeFiles/csdf_dataflow.dir/SeqAnalyses.cpp.o.d"
  "libcsdf_dataflow.a"
  "libcsdf_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csdf_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
