# Empty compiler generated dependencies file for csdf_dataflow.
# This may be replaced when dependencies are built.
