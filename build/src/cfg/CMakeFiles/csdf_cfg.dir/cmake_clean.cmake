file(REMOVE_RECURSE
  "CMakeFiles/csdf_cfg.dir/Cfg.cpp.o"
  "CMakeFiles/csdf_cfg.dir/Cfg.cpp.o.d"
  "CMakeFiles/csdf_cfg.dir/CfgBuilder.cpp.o"
  "CMakeFiles/csdf_cfg.dir/CfgBuilder.cpp.o.d"
  "CMakeFiles/csdf_cfg.dir/CfgDot.cpp.o"
  "CMakeFiles/csdf_cfg.dir/CfgDot.cpp.o.d"
  "CMakeFiles/csdf_cfg.dir/LoopInfo.cpp.o"
  "CMakeFiles/csdf_cfg.dir/LoopInfo.cpp.o.d"
  "libcsdf_cfg.a"
  "libcsdf_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csdf_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
