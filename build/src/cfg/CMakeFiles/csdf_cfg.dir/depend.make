# Empty dependencies file for csdf_cfg.
# This may be replaced when dependencies are built.
