file(REMOVE_RECURSE
  "libcsdf_cfg.a"
)
