# Empty dependencies file for csdf_pcfg.
# This may be replaced when dependencies are built.
