file(REMOVE_RECURSE
  "libcsdf_pcfg.a"
)
