file(REMOVE_RECURSE
  "CMakeFiles/csdf_pcfg.dir/Engine.cpp.o"
  "CMakeFiles/csdf_pcfg.dir/Engine.cpp.o.d"
  "CMakeFiles/csdf_pcfg.dir/Matcher.cpp.o"
  "CMakeFiles/csdf_pcfg.dir/Matcher.cpp.o.d"
  "CMakeFiles/csdf_pcfg.dir/PartnerExpr.cpp.o"
  "CMakeFiles/csdf_pcfg.dir/PartnerExpr.cpp.o.d"
  "CMakeFiles/csdf_pcfg.dir/PcfgState.cpp.o"
  "CMakeFiles/csdf_pcfg.dir/PcfgState.cpp.o.d"
  "libcsdf_pcfg.a"
  "libcsdf_pcfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csdf_pcfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
