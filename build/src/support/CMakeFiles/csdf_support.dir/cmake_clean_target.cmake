file(REMOVE_RECURSE
  "libcsdf_support.a"
)
