file(REMOVE_RECURSE
  "CMakeFiles/csdf_support.dir/ErrorHandling.cpp.o"
  "CMakeFiles/csdf_support.dir/ErrorHandling.cpp.o.d"
  "CMakeFiles/csdf_support.dir/Stats.cpp.o"
  "CMakeFiles/csdf_support.dir/Stats.cpp.o.d"
  "libcsdf_support.a"
  "libcsdf_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csdf_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
