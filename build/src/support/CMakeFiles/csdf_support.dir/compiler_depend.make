# Empty compiler generated dependencies file for csdf_support.
# This may be replaced when dependencies are built.
