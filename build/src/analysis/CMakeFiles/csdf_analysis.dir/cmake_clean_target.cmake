file(REMOVE_RECURSE
  "libcsdf_analysis.a"
)
