# Empty dependencies file for csdf_analysis.
# This may be replaced when dependencies are built.
