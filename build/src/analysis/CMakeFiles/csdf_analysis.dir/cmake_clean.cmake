file(REMOVE_RECURSE
  "CMakeFiles/csdf_analysis.dir/Clients.cpp.o"
  "CMakeFiles/csdf_analysis.dir/Clients.cpp.o.d"
  "libcsdf_analysis.a"
  "libcsdf_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csdf_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
