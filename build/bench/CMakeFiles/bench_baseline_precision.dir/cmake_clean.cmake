file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_precision.dir/bench_baseline_precision.cpp.o"
  "CMakeFiles/bench_baseline_precision.dir/bench_baseline_precision.cpp.o.d"
  "bench_baseline_precision"
  "bench_baseline_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
