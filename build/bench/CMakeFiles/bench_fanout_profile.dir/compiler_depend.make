# Empty compiler generated dependencies file for bench_fanout_profile.
# This may be replaced when dependencies are built.
