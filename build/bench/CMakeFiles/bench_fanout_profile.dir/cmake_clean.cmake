file(REMOVE_RECURSE
  "CMakeFiles/bench_fanout_profile.dir/bench_fanout_profile.cpp.o"
  "CMakeFiles/bench_fanout_profile.dir/bench_fanout_profile.cpp.o.d"
  "bench_fanout_profile"
  "bench_fanout_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fanout_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
