file(REMOVE_RECURSE
  "CMakeFiles/bench_hsm.dir/bench_hsm.cpp.o"
  "CMakeFiles/bench_hsm.dir/bench_hsm.cpp.o.d"
  "bench_hsm"
  "bench_hsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
