# Empty compiler generated dependencies file for bench_hsm.
# This may be replaced when dependencies are built.
