file(REMOVE_RECURSE
  "CMakeFiles/bench_patterns.dir/bench_patterns.cpp.o"
  "CMakeFiles/bench_patterns.dir/bench_patterns.cpp.o.d"
  "bench_patterns"
  "bench_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
