file(REMOVE_RECURSE
  "CMakeFiles/exprops_test.dir/lang/ExprOpsTest.cpp.o"
  "CMakeFiles/exprops_test.dir/lang/ExprOpsTest.cpp.o.d"
  "exprops_test"
  "exprops_test.pdb"
  "exprops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exprops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
