# Empty compiler generated dependencies file for exprops_test.
# This may be replaced when dependencies are built.
