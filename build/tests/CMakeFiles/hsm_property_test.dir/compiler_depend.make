# Empty compiler generated dependencies file for hsm_property_test.
# This may be replaced when dependencies are built.
