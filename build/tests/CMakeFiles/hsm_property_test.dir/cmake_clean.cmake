file(REMOVE_RECURSE
  "CMakeFiles/hsm_property_test.dir/hsm/HsmPropertyTest.cpp.o"
  "CMakeFiles/hsm_property_test.dir/hsm/HsmPropertyTest.cpp.o.d"
  "hsm_property_test"
  "hsm_property_test.pdb"
  "hsm_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsm_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
