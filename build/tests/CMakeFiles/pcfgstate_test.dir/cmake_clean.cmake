file(REMOVE_RECURSE
  "CMakeFiles/pcfgstate_test.dir/pcfg/PcfgStateTest.cpp.o"
  "CMakeFiles/pcfgstate_test.dir/pcfg/PcfgStateTest.cpp.o.d"
  "pcfgstate_test"
  "pcfgstate_test.pdb"
  "pcfgstate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcfgstate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
