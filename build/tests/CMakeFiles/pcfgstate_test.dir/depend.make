# Empty dependencies file for pcfgstate_test.
# This may be replaced when dependencies are built.
