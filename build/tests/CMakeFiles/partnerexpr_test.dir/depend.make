# Empty dependencies file for partnerexpr_test.
# This may be replaced when dependencies are built.
