file(REMOVE_RECURSE
  "CMakeFiles/partnerexpr_test.dir/pcfg/PartnerExprTest.cpp.o"
  "CMakeFiles/partnerexpr_test.dir/pcfg/PartnerExprTest.cpp.o.d"
  "partnerexpr_test"
  "partnerexpr_test.pdb"
  "partnerexpr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partnerexpr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
