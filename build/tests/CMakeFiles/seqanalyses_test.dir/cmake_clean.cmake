file(REMOVE_RECURSE
  "CMakeFiles/seqanalyses_test.dir/dataflow/SeqAnalysesTest.cpp.o"
  "CMakeFiles/seqanalyses_test.dir/dataflow/SeqAnalysesTest.cpp.o.d"
  "seqanalyses_test"
  "seqanalyses_test.pdb"
  "seqanalyses_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seqanalyses_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
