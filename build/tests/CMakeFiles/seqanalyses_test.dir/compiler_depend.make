# Empty compiler generated dependencies file for seqanalyses_test.
# This may be replaced when dependencies are built.
