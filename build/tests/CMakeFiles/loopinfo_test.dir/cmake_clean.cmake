file(REMOVE_RECURSE
  "CMakeFiles/loopinfo_test.dir/cfg/LoopInfoTest.cpp.o"
  "CMakeFiles/loopinfo_test.dir/cfg/LoopInfoTest.cpp.o.d"
  "loopinfo_test"
  "loopinfo_test.pdb"
  "loopinfo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loopinfo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
