# Empty dependencies file for loopinfo_test.
# This may be replaced when dependencies are built.
