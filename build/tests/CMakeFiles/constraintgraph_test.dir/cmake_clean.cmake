file(REMOVE_RECURSE
  "CMakeFiles/constraintgraph_test.dir/numeric/ConstraintGraphTest.cpp.o"
  "CMakeFiles/constraintgraph_test.dir/numeric/ConstraintGraphTest.cpp.o.d"
  "constraintgraph_test"
  "constraintgraph_test.pdb"
  "constraintgraph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constraintgraph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
