# Empty dependencies file for constraintgraph_test.
# This may be replaced when dependencies are built.
