file(REMOVE_RECURSE
  "CMakeFiles/exactness_sweep_test.dir/pcfg/ExactnessSweepTest.cpp.o"
  "CMakeFiles/exactness_sweep_test.dir/pcfg/ExactnessSweepTest.cpp.o.d"
  "exactness_sweep_test"
  "exactness_sweep_test.pdb"
  "exactness_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exactness_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
