# Empty compiler generated dependencies file for exactness_sweep_test.
# This may be replaced when dependencies are built.
