file(REMOVE_RECURSE
  "CMakeFiles/mpicfg_test.dir/baseline/MpiCfgTest.cpp.o"
  "CMakeFiles/mpicfg_test.dir/baseline/MpiCfgTest.cpp.o.d"
  "mpicfg_test"
  "mpicfg_test.pdb"
  "mpicfg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpicfg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
