# Empty compiler generated dependencies file for mpicfg_test.
# This may be replaced when dependencies are built.
