
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pcfg/MatcherTest.cpp" "tests/CMakeFiles/matcher_test.dir/pcfg/MatcherTest.cpp.o" "gcc" "tests/CMakeFiles/matcher_test.dir/pcfg/MatcherTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dataflow/CMakeFiles/csdf_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/csdf_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/csdf_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/csdf_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/pcfg/CMakeFiles/csdf_pcfg.dir/DependInfo.cmake"
  "/root/repo/build/src/hsm/CMakeFiles/csdf_hsm.dir/DependInfo.cmake"
  "/root/repo/build/src/procset/CMakeFiles/csdf_procset.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/csdf_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/csdf_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/csdf_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/csdf_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/csdf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
