# Empty compiler generated dependencies file for linearexpr_test.
# This may be replaced when dependencies are built.
