file(REMOVE_RECURSE
  "CMakeFiles/linearexpr_test.dir/numeric/LinearExprTest.cpp.o"
  "CMakeFiles/linearexpr_test.dir/numeric/LinearExprTest.cpp.o.d"
  "linearexpr_test"
  "linearexpr_test.pdb"
  "linearexpr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linearexpr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
