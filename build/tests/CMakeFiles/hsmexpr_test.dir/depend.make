# Empty dependencies file for hsmexpr_test.
# This may be replaced when dependencies are built.
