file(REMOVE_RECURSE
  "CMakeFiles/hsmexpr_test.dir/hsm/HsmExprTest.cpp.o"
  "CMakeFiles/hsmexpr_test.dir/hsm/HsmExprTest.cpp.o.d"
  "hsmexpr_test"
  "hsmexpr_test.pdb"
  "hsmexpr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsmexpr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
