file(REMOVE_RECURSE
  "CMakeFiles/procset_test.dir/procset/ProcSetTest.cpp.o"
  "CMakeFiles/procset_test.dir/procset/ProcSetTest.cpp.o.d"
  "procset_test"
  "procset_test.pdb"
  "procset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
