# Empty compiler generated dependencies file for procset_test.
# This may be replaced when dependencies are built.
