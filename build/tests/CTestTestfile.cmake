# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/lexer_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/exprops_test[1]_include.cmake")
include("/root/repo/build/tests/sema_test[1]_include.cmake")
include("/root/repo/build/tests/cfg_test[1]_include.cmake")
include("/root/repo/build/tests/interp_test[1]_include.cmake")
include("/root/repo/build/tests/linearexpr_test[1]_include.cmake")
include("/root/repo/build/tests/constraintgraph_test[1]_include.cmake")
include("/root/repo/build/tests/procset_test[1]_include.cmake")
include("/root/repo/build/tests/poly_test[1]_include.cmake")
include("/root/repo/build/tests/hsm_test[1]_include.cmake")
include("/root/repo/build/tests/hsmexpr_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/mpicfg_test[1]_include.cmake")
include("/root/repo/build/tests/pcfgstate_test[1]_include.cmake")
include("/root/repo/build/tests/partnerexpr_test[1]_include.cmake")
include("/root/repo/build/tests/matcher_test[1]_include.cmake")
include("/root/repo/build/tests/exactness_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/dbm_property_test[1]_include.cmake")
include("/root/repo/build/tests/hsm_property_test[1]_include.cmake")
include("/root/repo/build/tests/seqanalyses_test[1]_include.cmake")
include("/root/repo/build/tests/aggregate_test[1]_include.cmake")
include("/root/repo/build/tests/engine_robustness_test[1]_include.cmake")
include("/root/repo/build/tests/clients_test[1]_include.cmake")
include("/root/repo/build/tests/interp_edge_test[1]_include.cmake")
include("/root/repo/build/tests/loopinfo_test[1]_include.cmake")
