file(REMOVE_RECURSE
  "CMakeFiles/csdf.dir/csdf-cli.cpp.o"
  "CMakeFiles/csdf.dir/csdf-cli.cpp.o.d"
  "csdf"
  "csdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
