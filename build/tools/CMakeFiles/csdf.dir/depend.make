# Empty dependencies file for csdf.
# This may be replaced when dependencies are built.
