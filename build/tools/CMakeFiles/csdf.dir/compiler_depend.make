# Empty compiler generated dependencies file for csdf.
# This may be replaced when dependencies are built.
