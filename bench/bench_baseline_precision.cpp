//===- bench/bench_baseline_precision.cpp - E8: MPI-CFG vs pCFG ----------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Section II positions MPI-CFGs as "more sequential": they connect every
// send to every recv and prune with sequential information only. This
// table regenerates the comparison on the corpus: edges kept by the
// baseline, pairs matched by the pCFG analysis, and the dynamic truth at
// np = 8. Spurious edges (baseline - truth) is the precision gap; the
// pCFG analysis is exact wherever it converges.
//
//===----------------------------------------------------------------------===//

#include "baseline/MpiCfg.h"
#include "cfg/CfgBuilder.h"
#include "interp/Interpreter.h"
#include "lang/Corpus.h"
#include "lang/Parser.h"
#include "pcfg/Engine.h"

#include <cstdio>
#include <set>

using namespace csdf;

int main() {
  std::printf("=== E8: MPI-CFG baseline precision vs pCFG analysis ===\n\n");
  std::printf("%-22s %8s %8s %8s %9s %10s %10s\n", "kernel", "allpairs",
              "mpicfg", "pcfg", "dynamic", "spurious", "pcfgExact");

  unsigned TotalSpurious = 0;
  unsigned TotalDynamic = 0;
  for (const auto &[Name, Source] : corpus::allPatterns()) {
    Program Prog = parseProgramOrDie(Source);
    Cfg Graph = buildCfg(Prog);

    MpiCfgResult Base = buildMpiCfg(Graph);

    AnalysisResult Linear =
        analyzeProgram(Graph, AnalysisOptions::simpleSymbolic());
    AnalysisResult Cart = analyzeProgram(Graph, AnalysisOptions::cartesian());
    if (!Linear.Converged && !Cart.Converged) {
      AnalysisOptions Fixed = AnalysisOptions::cartesian();
      Fixed.FixedNp = 8;
      Cart = analyzeProgram(Graph, Fixed);
    }
    const AnalysisResult &Best = Cart.Converged ? Cart : Linear;

    // Ground truth: the union over runs that satisfy each kernel's
    // assumes (the NAS-CG kernel needs one square and one rectangular
    // grid to exercise both branches).
    std::set<std::pair<CfgNodeId, CfgNodeId>> Dynamic;
    struct RunConfig {
      int NumProcs;
      std::map<std::string, std::int64_t> Params;
    };
    std::vector<RunConfig> Configs = {
        {8, {{"nrows", 2}, {"ncols", 4}, {"half", 4}}}};
    if (Name == "transpose-square")
      Configs = {{4, {{"nrows", 2}}}};
    else if (Name == "nascg-transpose")
      Configs = {{16, {{"nrows", 4}, {"ncols", 4}}},
                 {8, {{"nrows", 2}, {"ncols", 4}}}};
    for (const RunConfig &C : Configs) {
      RunOptions Opts;
      Opts.NumProcs = C.NumProcs;
      Opts.Params = C.Params;
      RunResult Run = runProgram(Graph, Opts);
      for (const TraceEvent &E : Run.Trace)
        Dynamic.insert({E.SendNode, E.RecvNode});
    }

    unsigned Spurious = 0;
    for (const auto &Edge : Base.Edges)
      if (!Dynamic.count(Edge))
        ++Spurious;
    TotalSpurious += Spurious;
    TotalDynamic += static_cast<unsigned>(Dynamic.size());

    const char *Exact = "-";
    if (Best.Converged)
      Exact = Best.matchedNodePairs() == Dynamic ? "yes" : "no";

    std::printf("%-22s %8u %8zu %8zu %9zu %10u %10s\n", Name.c_str(),
                Base.InitialEdges, Base.Edges.size(),
                Best.matchedNodePairs().size(), Dynamic.size(), Spurious,
                Exact);
  }
  std::printf("\nbaseline keeps %u spurious edges across the suite "
              "(%u real pairs);\n"
              "the pCFG analysis reports exactly the real pairs wherever "
              "it converges.\n",
              TotalSpurious, TotalDynamic);
  return 0;
}
