//===- bench/bench_hsm.cpp - E3: HSM prover cost -------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Measures the Hierarchical Sequence Map machinery of Section VIII on the
// paper's own derivations: converting the NAS-CG transpose expressions to
// HSMs, the set-equality (surjectivity) proof, the sequence-equality
// (identity) proof, and the complete send/receive match for the square
// and rectangular grids plus the Figure 7 shift blocks.
//
//===----------------------------------------------------------------------===//

#include "hsm/HsmExpr.h"
#include "lang/Parser.h"
#include "support/Casting.h"

#include <benchmark/benchmark.h>

using namespace csdf;

namespace {

/// Holds a parsed expression and its facts for reuse across iterations.
struct Setup {
  Program Prog;
  const Expr *E = nullptr;
  FactEnv Facts;
};

Setup squareSetup() {
  Setup S;
  ParseResult R =
      parseProgram("x = (id % nrows) * nrows + id / nrows;");
  S.Prog = std::move(R.Prog);
  S.E = cast<AssignStmt>(S.Prog.body()[0])->value();
  Poly N = Poly::var("nrows");
  S.Facts.addRewrite("np", N.times(N));
  return S;
}

Setup rectSetup() {
  Setup S;
  ParseResult R = parseProgram(
      "x = 2 * nrows * (id / 2 % nrows) + 2 * (id / (2 * nrows)) + id % 2;");
  S.Prog = std::move(R.Prog);
  S.E = cast<AssignStmt>(S.Prog.body()[0])->value();
  Poly N = Poly::var("nrows");
  S.Facts.addRewrite("ncols", Poly(2).times(N));
  S.Facts.addRewrite("np", Poly(2).times(N).times(N));
  return S;
}

void BM_HsmOfExprSquare(benchmark::State &State) {
  Setup S = squareSetup();
  Hsm Domain = Hsm::range(Poly(0), Poly::var("np"));
  for (auto _ : State)
    benchmark::DoNotOptimize(hsmOfExpr(S.E, Domain, S.Facts));
}

void BM_HsmOfExprRect(benchmark::State &State) {
  Setup S = rectSetup();
  Hsm Domain = Hsm::range(Poly(0), Poly::var("np"));
  for (auto _ : State)
    benchmark::DoNotOptimize(hsmOfExpr(S.E, Domain, S.Facts));
}

void BM_SurjectivitySquare(benchmark::State &State) {
  Setup S = squareSetup();
  Hsm Domain = Hsm::range(Poly(0), Poly::var("np"));
  Hsm Image = *hsmOfExpr(S.E, Domain, S.Facts);
  for (auto _ : State)
    benchmark::DoNotOptimize(hsmSetEquals(Image, Domain, S.Facts));
}

void BM_IdentitySquare(benchmark::State &State) {
  Setup S = squareSetup();
  Hsm Domain = Hsm::range(Poly(0), Poly::var("np"));
  Hsm Image = *hsmOfExpr(S.E, Domain, S.Facts);
  for (auto _ : State) {
    auto Composed = hsmOfExpr(S.E, Image, S.Facts);
    benchmark::DoNotOptimize(
        hsmSequenceEquals(*Composed, Domain, S.Facts));
  }
}

void BM_FullMatchSquare(benchmark::State &State) {
  Setup S = squareSetup();
  for (auto _ : State)
    benchmark::DoNotOptimize(hsmFullSetMatch(S.E, Poly(0), Poly::var("np"),
                                             S.E, Poly(0), Poly::var("np"),
                                             S.Facts));
}

void BM_FullMatchRect(benchmark::State &State) {
  Setup S = rectSetup();
  for (auto _ : State)
    benchmark::DoNotOptimize(hsmFullSetMatch(S.E, Poly(0), Poly::var("np"),
                                             S.E, Poly(0), Poly::var("np"),
                                             S.Facts));
}

void BM_FullMatchShiftBlock(benchmark::State &State) {
  // Interior block of Figure 7: [1..np-3] -> [2..np-2].
  Setup S;
  ParseResult RS = parseProgram("a = id + 1; b = id - 1;");
  S.Prog = std::move(RS.Prog);
  const Expr *SendE = cast<AssignStmt>(S.Prog.body()[0])->value();
  const Expr *RecvE = cast<AssignStmt>(S.Prog.body()[1])->value();
  Poly Count = Poly::var("np").minus(Poly(3));
  for (auto _ : State)
    benchmark::DoNotOptimize(hsmFullSetMatch(SendE, Poly(1), Count, RecvE,
                                             Poly(2), Count, S.Facts));
}

void BM_RejectNonMatching(benchmark::State &State) {
  // A prover must also be fast at *failing*: send id+1 vs recv id+2.
  Setup S;
  ParseResult RS = parseProgram("a = id + 1; b = id + 2;");
  S.Prog = std::move(RS.Prog);
  const Expr *SendE = cast<AssignStmt>(S.Prog.body()[0])->value();
  const Expr *RecvE = cast<AssignStmt>(S.Prog.body()[1])->value();
  Poly Count = Poly::var("np").minus(Poly(3));
  for (auto _ : State)
    benchmark::DoNotOptimize(hsmFullSetMatch(SendE, Poly(1), Count, RecvE,
                                             Poly(2), Count, S.Facts));
}

} // namespace

BENCHMARK(BM_HsmOfExprSquare)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_HsmOfExprRect)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SurjectivitySquare)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_IdentitySquare)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_FullMatchSquare)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_FullMatchRect)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_FullMatchShiftBlock)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_RejectNonMatching)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
