//===- bench/bench_parallel.cpp - E7: parallel pCFG analysis -------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Section IX(5) argues pCFG-based analyses are naturally parallelizable.
// The system now parallelizes at two granularities, and this harness
// measures both:
//
//   * in-engine: one analysis, AnalysisOptions::Threads = N speculative
//     step workers draining a single worklist (deterministic commits, so
//     the result fingerprint must not change with N);
//   * batch: whole sessions as tasks — fork mode (isolated children) vs
//     threads mode (in-process pool sharing one cross-session closure
//     memo) over a corpus of files, at increasing job counts.
//
// `--json PATH` writes the measured curves plus host metadata (hardware
// thread count) as JSON; BENCH_parallel.json in the repo root is this
// file's committed output, and CI regenerates it as an artifact on a
// multi-core runner. Speedups are meaningless when the host has fewer
// cores than the thread count — the JSON records the core count so a
// flat curve from a 1-core container is not mistaken for a scaling
// failure.
//
//===----------------------------------------------------------------------===//

#include "BenchMeta.h"
#include "api/Csdf.h"
#include "cfg/CfgBuilder.h"
#include "driver/Batch.h"
#include "lang/Corpus.h"
#include "lang/Parser.h"
#include "pcfg/Engine.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

using namespace csdf;
namespace fs = std::filesystem;

namespace {

double nowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct CurvePoint {
  unsigned Threads = 1;
  double Ms = 0;
  double Speedup = 1.0;
};

std::string curveJson(const std::vector<CurvePoint> &Curve,
                      const char *Key = "threads") {
  std::ostringstream Os;
  Os << "[";
  for (size_t I = 0; I < Curve.size(); ++I) {
    if (I)
      Os << ", ";
    char Buf[96];
    std::snprintf(Buf, sizeof(Buf),
                  "{\"%s\": %u, \"ms\": %.2f, \"speedup\": %.2f}", Key,
                  Curve[I].Threads, Curve[I].Ms, Curve[I].Speedup);
    Os << Buf;
  }
  Os << "]";
  return Os.str();
}

//===--------------------------------------------------------------------===//
// Level 1: in-engine parallel drain
//===--------------------------------------------------------------------===//

/// A result fingerprint coarse enough for a quick cross-thread-count
/// equality check (the determinism test does the exhaustive one).
std::string fingerprint(const AnalysisResult &R) {
  std::ostringstream Os;
  Os << R.Outcome.str() << " m=" << R.Matches.size()
     << " b=" << R.Bugs.size() << " s=" << R.StatesExplored
     << " c=" << R.ConfigsVisited;
  return Os.str();
}

/// The heaviest corpus kernel mix: every pattern at a pinned, large np,
/// analyzed back to back as ONE timed unit so the engine curve reflects a
/// realistic worklist mix rather than a single lucky shape.
struct EngineWorkload {
  std::vector<Cfg> Graphs;
  std::vector<Program> Progs; // Keeps the Cfg node pointers alive.
  AnalysisOptions Base = AnalysisOptions::cartesian();
};

EngineWorkload buildEngineWorkload() {
  EngineWorkload W;
  for (const auto &[Name, Source] : corpus::allPatterns()) {
    W.Progs.push_back(parseProgramOrDie(Source));
    W.Graphs.push_back(buildCfg(W.Progs.back()));
  }
  W.Base.FixedNp = 32;
  return W;
}

/// One timed pass over the workload at a given engine thread count.
/// Returns {elapsed ms, concatenated fingerprints}.
std::pair<double, std::string> runEngine(const EngineWorkload &W,
                                         unsigned Threads) {
  AnalysisOptions Opts = W.Base;
  Opts.Threads = Threads;
  std::string Fp;
  double Start = nowMs();
  for (const Cfg &G : W.Graphs) {
    StatsRegistry Stats;
    Fp += fingerprint(analyzeProgram(G, Opts, &Stats));
    Fp += ";";
  }
  return {nowMs() - Start, Fp};
}

//===--------------------------------------------------------------------===//
// Level 2: batch over a corpus of files
//===--------------------------------------------------------------------===//

/// Writes the corpus to a scratch directory (each kernel a few times so
/// there is enough work per job slot), removed on destruction.
struct ScratchCorpus {
  fs::path Dir;
  std::vector<std::string> Files;
  explicit ScratchCorpus(int Copies) {
    Dir = fs::temp_directory_path() /
          ("csdf-bench-parallel-" + std::to_string(::getpid()));
    fs::create_directories(Dir);
    for (const auto &[Name, Source] : corpus::allPatterns())
      for (int C = 0; C < Copies; ++C) {
        fs::path P = Dir / (Name + "-" + std::to_string(C) + ".mpl");
        std::ofstream(P) << Source;
        Files.push_back(P.string());
      }
    std::sort(Files.begin(), Files.end());
  }
  ~ScratchCorpus() {
    std::error_code Ec;
    fs::remove_all(Dir, Ec);
  }
};

double runBatchOnce(const ScratchCorpus &Corpus, BatchMode Mode,
                    unsigned Jobs) {
  // Through the facade, like every batch front end. A fresh cold
  // Analyzer per run keeps repetitions independent (no warm memo
  // flattering later samples).
  api::Analyzer An;
  api::BatchRequest Req;
  Req.Files = Corpus.Files;
  Req.Options.FixedNp = 12;
  Req.Mode = Mode;
  Req.Jobs = Jobs;
  double Start = nowMs();
  BatchReport Report = An.runBatch(Req);
  double Ms = nowMs() - Start;
  if (Report.Entries.size() != Corpus.Files.size())
    std::fprintf(stderr, "batch dropped entries!\n");
  return Ms;
}

/// Best-of-N to damp scheduler noise; the committed JSON comes from a
/// container, not a quiet lab machine.
template <typename Fn> double bestOf(int N, Fn &&F) {
  double Best = F();
  for (int I = 1; I < N; ++I)
    Best = std::min(Best, F());
  return Best;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--json" && I + 1 < Argc) {
      JsonPath = Argv[++I];
    } else {
      std::fprintf(stderr, "usage: %s [--json PATH]\n", Argv[0]);
      return 2;
    }
  }

  unsigned HW = ThreadPool::hardwareThreads();
  std::printf("=== E7: parallel pCFG analysis scaling ===\n");
  std::printf("host hardware threads: %u\n\n", HW);

  const std::vector<unsigned> Counts = {1, 2, 4, 8};

  // Level 1: in-engine parallel drain.
  EngineWorkload W = buildEngineWorkload();
  std::printf("[engine] %zu kernels, cartesian preset, np=32, one "
              "worklist per kernel\n",
              W.Graphs.size());
  (void)runEngine(W, 1); // Warm-up: allocator pools, closure memo shapes.
  std::vector<CurvePoint> Engine;
  std::string BaseFp;
  bool Identical = true;
  for (unsigned T : Counts) {
    std::string Fp;
    double Ms = bestOf(3, [&] {
      auto [ThisMs, ThisFp] = runEngine(W, T);
      Fp = ThisFp;
      return ThisMs;
    });
    if (T == 1)
      BaseFp = Fp;
    else if (Fp != BaseFp)
      Identical = false;
    Engine.push_back({T, Ms, Engine.empty() ? 1.0 : Engine[0].Ms / Ms});
    std::printf("  threads=%u  %9.2f ms  %5.2fx  %s\n", T, Ms,
                Engine.back().Speedup,
                Fp == BaseFp ? "identical" : "RESULTS DIVERGED");
  }

  // Level 2: batch fork vs threads mode.
  ScratchCorpus Corpus(3);
  std::printf("\n[batch] %zu files, fork vs threads mode\n",
              Corpus.Files.size());
  std::vector<CurvePoint> Fork, Threads;
  for (unsigned J : Counts) {
    double ForkMs = bestOf(2, [&] { return runBatchOnce(Corpus, BatchMode::Fork, J); });
    Fork.push_back({J, ForkMs, Fork.empty() ? 1.0 : Fork[0].Ms / ForkMs});
    double ThreadsMs =
        bestOf(2, [&] { return runBatchOnce(Corpus, BatchMode::Threads, J); });
    Threads.push_back(
        {J, ThreadsMs, Threads.empty() ? 1.0 : Threads[0].Ms / ThreadsMs});
    std::printf("  jobs=%u  fork %9.2f ms (%4.2fx)   threads %9.2f ms "
                "(%4.2fx)\n",
                J, ForkMs, Fork.back().Speedup, ThreadsMs,
                Threads.back().Speedup);
  }

  std::printf("\nengine results across thread counts: %s\n",
              Identical ? "bit-identical (deterministic commits)"
                        : "DIVERGED — determinism bug");
  if (HW < 4)
    std::printf("note: only %u hardware thread(s); speedups are bounded "
                "by the host, not the scheduler. CI publishes the "
                "multi-core curve.\n",
                HW);

  if (!JsonPath.empty()) {
    std::ofstream Out(JsonPath);
    Out << "{\n"
        << "  \"bench\": \"parallel\",\n"
        << "  \"meta\": " << bench::benchMetaJson() << ",\n"
        << "  \"engine\": {\n"
        << "    \"workload\": \"" << W.Graphs.size()
        << " corpus kernels, cartesian, np=32\",\n"
        << "    \"identical_results\": " << (Identical ? "true" : "false")
        << ",\n"
        << "    \"curve\": " << curveJson(Engine) << "\n"
        << "  },\n"
        << "  \"batch\": {\n"
        << "    \"files\": " << Corpus.Files.size() << ",\n"
        << "    \"fork\": " << curveJson(Fork, "jobs") << ",\n"
        << "    \"threads\": " << curveJson(Threads, "jobs") << "\n"
        << "  }\n"
        << "}\n";
    std::printf("wrote %s\n", JsonPath.c_str());
  }
  return Identical ? 0 : 1;
}
