//===- bench/bench_parallel.cpp - E7: parallel pCFG analysis -------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Section IX(5) argues pCFG-based analyses are naturally parallelizable
// because work on different portions of the pCFG proceeds independently.
// This harness parallelizes at the coarsest such granularity — disjoint
// analysis tasks (kernel x configuration) distributed over a thread pool,
// each with its own StatsRegistry — and reports the speedup curve.
//
//===----------------------------------------------------------------------===//

#include "cfg/CfgBuilder.h"
#include "lang/Corpus.h"
#include "lang/Parser.h"
#include "pcfg/Engine.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

using namespace csdf;

namespace {

struct Task {
  Program Prog;
  Cfg Graph;
  AnalysisOptions Opts;
};

std::vector<Task> buildTasks() {
  std::vector<Task> Tasks;
  for (const auto &[Name, Source] : corpus::allPatterns()) {
    for (bool Hsm : {false, true}) {
      for (std::int64_t FixedNp : {0, 8, 16}) {
        Task T;
        T.Prog = parseProgramOrDie(Source);
        T.Graph = buildCfg(T.Prog);
        T.Opts = Hsm ? AnalysisOptions::cartesian()
                     : AnalysisOptions::simpleSymbolic();
        T.Opts.FixedNp = FixedNp;
        Tasks.push_back(std::move(T));
      }
    }
  }
  return Tasks;
}

double runWithThreads(const std::vector<Task> &Tasks, unsigned NumThreads) {
  std::atomic<size_t> Next{0};
  auto Start = std::chrono::steady_clock::now();
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T) {
    Threads.emplace_back([&] {
      StatsRegistry Local; // Per-thread stats: no shared mutable state.
      for (;;) {
        size_t I = Next.fetch_add(1);
        if (I >= Tasks.size())
          return;
        AnalysisResult R =
            analyzeProgram(Tasks[I].Graph, Tasks[I].Opts, &Local);
        (void)R;
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

} // namespace

int main() {
  std::printf("=== E7: parallel pCFG analysis scaling ===\n\n");
  std::vector<Task> Tasks = buildTasks();
  std::printf("%zu independent analysis tasks (kernel x client x np)\n\n",
              Tasks.size());

  // Warm-up to populate allocator pools fairly.
  runWithThreads(Tasks, 1);

  double Baseline = 0;
  std::printf("%-9s %12s %10s\n", "threads", "time(ms)", "speedup");
  unsigned HW = std::max(2u, std::thread::hardware_concurrency());
  for (unsigned T = 1; T <= HW; T *= 2) {
    double Ms = runWithThreads(Tasks, T);
    if (T == 1)
      Baseline = Ms;
    std::printf("%-9u %12.2f %9.2fx\n", T, Ms, Baseline / Ms);
  }
  std::printf("\npCFG analyses share no mutable state, so the speedup "
              "tracks the task mix (Section IX, direction 5).\n");
  return 0;
}
