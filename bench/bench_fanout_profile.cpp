//===- bench/bench_fanout_profile.cpp - E5: the Section IX profile -------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Section IX reports, for a fan-out broadcast analyzed on a 2.8 GHz
// Opteron:
//
//   * 381 s total analysis time,
//   * 92.5% of it (351 s) spent keeping the dataflow state consistent,
//   * 217 O(n^3) transitive closures over an average of 52.3 variables,
//   * 78 O(n^2) incremental closures over an average of 66.3 variables,
//   * C++ STL containers blamed for cache-hostile state.
//
// This binary analyzes the same fan-out broadcast kernel and prints the
// corresponding measurements for this implementation, on both constraint-
// graph backends. Absolute times differ by orders of magnitude (different
// decade of hardware, leaner client analysis — the paper itself lists the
// fixes we applied as its optimization directions 1-4); the *shape* to
// compare is where time goes and how many closures of which kind run.
//
//===----------------------------------------------------------------------===//

#include "BenchMeta.h"
#include "cfg/CfgBuilder.h"
#include "lang/Corpus.h"
#include "lang/Parser.h"
#include "pcfg/Engine.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace csdf;

namespace {

struct ProfileRow {
  const char *Backend;
  double TotalSec = 0;
  double ClosureSec = 0;
  long FullCalls = 0;
  double FullAvgVars = 0;
  long IncrCalls = 0;
  double IncrAvgVars = 0;
  long CowCopies = 0;
  long CowDetaches = 0;
  long MemoHits = 0;
  bool Converged = false;
};

ProfileRow profileRun(DbmBackend Backend, const char *Name, int Repeats) {
  Program Prog = parseProgramOrDie(corpus::fanOutBroadcast());
  Cfg Graph = buildCfg(Prog);

  StatsRegistry Stats;
  AnalysisOptions Opts = AnalysisOptions::simpleSymbolic();
  Opts.Backend = Backend;
  ProfileRow Row;
  Row.Backend = Name;
  for (int I = 0; I < Repeats; ++I) {
    Stats.clear();
    AnalysisResult Result = analyzeProgram(Graph, Opts, &Stats);
    Row.Converged = Result.Converged;
  }
  Row.TotalSec = Stats.seconds("pcfg.analysis.seconds");
  Row.ClosureSec = Stats.seconds("cg.closure.seconds");
  Row.FullCalls = Stats.counter("cg.closure.full.calls");
  Row.IncrCalls = Stats.counter("cg.closure.incr.calls");
  if (Row.FullCalls)
    Row.FullAvgVars =
        static_cast<double>(Stats.counter("cg.closure.full.varsum")) /
        static_cast<double>(Row.FullCalls);
  if (Row.IncrCalls)
    Row.IncrAvgVars =
        static_cast<double>(Stats.counter("cg.closure.incr.varsum")) /
        static_cast<double>(Row.IncrCalls);
  Row.CowCopies = Stats.counter("cg.cow.copies");
  Row.CowDetaches = Stats.counter("cg.cow.detaches");
  Row.MemoHits = Stats.counter("cg.closure.memo.hits");
  return Row;
}

/// Writes both backend profiles as JSON so CI can archive the Section IX
/// profile per commit.
int writeJson(const std::string &Path) {
  std::FILE *Out = std::fopen(Path.c_str(), "w");
  if (!Out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", Path.c_str());
    return 1;
  }
  std::fprintf(Out, "{\n\"meta\": %s,\n\"records\": [\n",
               bench::benchMetaJson().c_str());
  bool First = true;
  for (auto [Backend, Name] :
       {std::pair{DbmBackend::MapBased, "map"},
        std::pair{DbmBackend::Dense, "dense"}}) {
    ProfileRow Row = profileRun(Backend, Name, /*Repeats=*/1);
    std::fprintf(
        Out,
        "%s  {\"workload\": \"fanout_broadcast\", \"backend\": \"%s\", "
        "\"wall_ns\": %lld, \"closure_ns\": %lld, "
        "\"full_closures\": %ld, \"full_avg_vars\": %.1f, "
        "\"incremental_closures\": %ld, \"incr_avg_vars\": %.1f, "
        "\"cow_copies\": %ld, \"cow_detaches\": %ld, "
        "\"memo_hits\": %ld, \"converged\": %s}",
        First ? "" : ",\n", Row.Backend,
        static_cast<long long>(Row.TotalSec * 1e9),
        static_cast<long long>(Row.ClosureSec * 1e9), Row.FullCalls,
        Row.FullAvgVars, Row.IncrCalls, Row.IncrAvgVars, Row.CowCopies,
        Row.CowDetaches, Row.MemoHits, Row.Converged ? "true" : "false");
    First = false;
  }
  std::fprintf(Out, "\n]\n}\n");
  std::fclose(Out);
  std::printf("wrote fan-out profile to %s\n", Path.c_str());
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  for (int I = 1; I < argc; ++I)
    if (std::strcmp(argv[I], "--json") == 0 && I + 1 < argc)
      return writeJson(argv[I + 1]);
  std::printf("=== E5: fan-out broadcast analysis profile (Section IX) "
              "===\n\n");
  std::printf("paper (2.8 GHz Opteron prototype):\n");
  std::printf("  total 381 s; state consistency 351 s (92.5%%)\n");
  std::printf("  O(n^3) closures: 217 calls, avg 52.3 vars\n");
  std::printf("  O(n^2) closures:  78 calls, avg 66.3 vars\n\n");

  const int Repeats = 1;
  std::printf("this implementation (per analysis of the same kernel):\n");
  std::printf("%-9s %12s %12s %8s %9s %9s %9s %9s %7s %8s %8s %10s\n",
              "backend", "total(ms)", "closure(ms)", "frac", "fullCls",
              "avgVars", "incrCls", "avgVars", "copies", "detaches",
              "memoHit", "converged");
  for (auto [Backend, Name] :
       {std::pair{DbmBackend::MapBased, "map"},
        std::pair{DbmBackend::Dense, "dense"}}) {
    ProfileRow Row = profileRun(Backend, Name, Repeats);
    std::printf("%-9s %12.3f %12.3f %7.1f%% %9ld %9.1f %9ld %9.1f %7ld "
                "%8ld %8ld %10s\n",
                Row.Backend, Row.TotalSec * 1e3, Row.ClosureSec * 1e3,
                Row.TotalSec > 0 ? 100.0 * Row.ClosureSec / Row.TotalSec
                                 : 0.0,
                Row.FullCalls, Row.FullAvgVars, Row.IncrCalls,
                Row.IncrAvgVars, Row.CowCopies, Row.CowDetaches,
                Row.MemoHits, Row.Converged ? "yes" : "no");
  }
  std::printf("\nshape checks (vs paper):\n");
  std::printf("  * closure work dominates the analysis on the map backend "
              "(paper: 92.5%%);\n");
  std::printf("  * both closure variants fire many times per analysis;\n");
  std::printf("  * the dense-array backend removes most of that cost — the "
              "paper's optimization directions 1-4 applied.\n");
  return 0;
}
