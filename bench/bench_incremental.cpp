//===- bench/bench_incremental.cpp - Edit-loop cost: cold vs seeded --------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Measures the editor scenario the incremental pipeline exists for: a
// program with many communication phases, the user edits one small
// procedure, and the analyzer re-answers. A cold run pays the full
// fixpoint over every phase each time; analyzeIncremental re-runs with
// the prior engine trace attached as a seed, so worklist steps of
// untouched phases are adopted (validated, not recomputed). Programs are
// synthesized as N scatter phases plus a small `report` procedure; the
// edit loop flips a literal inside report — a variable-preserving
// single-procedure edit, so the seed is accepted and everything up to the
// first report state adopts. The process count is fixed (np=12) so the
// phase loops iterate concretely: no widening revisits, which would land
// after the edited procedure's first worklist appearance and close the
// adoption window early (trace adoption is positional and stops for good
// at the first divergent step).
//
// Reports cold vs incremental microseconds per revision and the adoption
// fraction for N in {8, 16, 24, 32}. `--json PATH` writes the curve;
// BENCH_incremental.json in the repo root is this file's committed output
// from the development container. Exit 1 when the largest size fails to
// clear a 5x speedup — the number the docs claim.
//
//===----------------------------------------------------------------------===//

#include "BenchMeta.h"
#include "api/Csdf.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

using namespace csdf;

namespace {

double nowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// N scatter phases, each its own procedure, called in sequence, then a
/// small `report` procedure. \p Tweak perturbs a literal in report's
/// body: same variables, same communication structure, different
/// constant — the smallest single-procedure edit an editor session
/// produces.
std::string phasedProgram(unsigned Phases, unsigned Tweak) {
  std::string Src;
  for (unsigned P = 0; P < Phases; ++P) {
    std::string V = "a" + std::to_string(P);
    Src += "proc phase" + std::to_string(P) + " do\n";
    Src += "  if id == 0 then\n";
    Src += "    " + V + " = " + std::to_string(P) + ";\n";
    Src += "    for i = 1 to np - 1 do\n";
    Src += "      send " + V + " -> i;\n";
    Src += "    end\n";
    Src += "  else\n";
    Src += "    recv " + V + " <- 0;\n";
    Src += "  end\n";
    Src += "end\n";
  }
  Src += "proc report do\n";
  Src += "  if id == 0 then\n";
  Src += "    r = " + std::to_string(Tweak) + ";\n";
  Src += "    print r;\n";
  Src += "  end\n";
  Src += "end\n";
  for (unsigned P = 0; P < Phases; ++P)
    Src += "call phase" + std::to_string(P) + ";\n";
  Src += "call report;\n";
  return Src;
}

struct Point {
  unsigned Phases = 0;
  double ColdUs = 0;
  double IncUs = 0;
  double AdoptedFrac = 0;
  double speedup() const { return IncUs > 0 ? ColdUs / IncUs : 0; }
};

Point measure(unsigned Phases, unsigned Revisions) {
  Point Pt;
  Pt.Phases = Phases;

  // Cold: a fresh one-shot Analyzer per revision (what `csdf analyze`
  // pays, minus process startup).
  {
    double Start = nowUs();
    for (unsigned R = 0; R < Revisions; ++R) {
      api::Analyzer An;
      api::AnalyzeRequest Req;
      Req.Path = "phased.mpl";
      Req.Source = phasedProgram(Phases, R);
      Req.Options.FixedNp = 12;
      An.analyze(Req);
    }
    Pt.ColdUs = (nowUs() - Start) / Revisions;
  }

  // Incremental: one editor session. The first revision is the untimed
  // warm-up that records the trace; every timed revision is a fresh edit
  // (never an exact cache repeat) re-analyzed with the prior seed.
  {
    api::Analyzer An(api::AnalyzerConfig::warm());
    api::AnalyzeRequest Req;
    Req.Path = "phased.mpl";
    Req.Options.FixedNp = 12;
    Req.Source = phasedProgram(Phases, 9999);
    An.analyzeIncremental(Req);

    std::uint64_t Adopted = 0, Total = 0;
    double Start = nowUs();
    for (unsigned R = 0; R < Revisions; ++R) {
      Req.Source = phasedProgram(Phases, R);
      api::AnalyzeResponse Resp = An.analyzeIncremental(Req);
      Adopted += Resp.Replay.AdoptedSteps;
      Total += Resp.Replay.TotalSteps;
    }
    Pt.IncUs = (nowUs() - Start) / Revisions;
    Pt.AdoptedFrac = Total ? static_cast<double>(Adopted) / Total : 0;
  }
  return Pt;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--json" && I + 1 < Argc) {
      JsonPath = Argv[++I];
    } else {
      std::fprintf(stderr, "usage: %s [--json PATH]\n", Argv[0]);
      return 2;
    }
  }

  const unsigned Sizes[] = {8, 16, 24, 32};
  const unsigned Revisions = 8;

  std::printf("=== incremental pipeline: edit-loop cost, cold vs seeded ===\n");
  std::printf("N scatter phases at np=12; each revision edits a literal in "
              "the report procedure (%u revisions)\n\n",
              Revisions);
  std::printf("%8s %14s %14s %10s %10s\n", "phases", "cold us/rev",
              "incr us/rev", "speedup", "adopted");

  std::vector<Point> Curve;
  for (unsigned N : Sizes) {
    Point Pt = measure(N, Revisions);
    std::printf("%8u %14.1f %14.1f %9.1fx %9.1f%%\n", Pt.Phases, Pt.ColdUs,
                Pt.IncUs, Pt.speedup(), Pt.AdoptedFrac * 100);
    Curve.push_back(Pt);
  }

  double BestSpeedup = Curve.back().speedup();
  bool Cleared = BestSpeedup >= 5.0;
  std::printf("\nlargest size speedup: %.1fx (%s the 5x bar)\n", BestSpeedup,
              Cleared ? "clears" : "MISSES");

  if (!JsonPath.empty()) {
    std::ofstream Out(JsonPath);
    Out << "{\n  \"bench\": \"incremental\",\n  \"meta\": "
        << bench::benchMetaJson() << ",\n  \"revisions\": " << Revisions
        << ",\n  \"curve\": [\n";
    char Buf[256];
    for (std::size_t I = 0; I < Curve.size(); ++I) {
      const Point &Pt = Curve[I];
      std::snprintf(Buf, sizeof(Buf),
                    "    {\"phases\": %u, \"cold_us_per_rev\": %.1f, "
                    "\"incremental_us_per_rev\": %.1f, \"speedup\": %.1f, "
                    "\"adopted_fraction\": %.3f}%s\n",
                    Pt.Phases, Pt.ColdUs, Pt.IncUs, Pt.speedup(),
                    Pt.AdoptedFrac, I + 1 < Curve.size() ? "," : "");
      Out << Buf;
    }
    std::snprintf(Buf, sizeof(Buf),
                  "  ],\n  \"largest_speedup\": %.1f,\n"
                  "  \"clears_5x\": %s\n}\n",
                  BestSpeedup, Cleared ? "true" : "false");
    Out << Buf;
    std::printf("wrote %s\n", JsonPath.c_str());
  }
  return Cleared ? 0 : 1;
}
