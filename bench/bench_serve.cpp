//===- bench/bench_serve.cpp - serve daemon latency and cache hit rate ----===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Measures what `csdf serve` exists to provide: request latency with warm
// state and a content-addressed result cache, against the one-shot cost a
// cold `csdf analyze` pays per file. Three request regimes over the corpus
// kernels:
//
//   * cold      — a fresh cold api::Analyzer per request (the one-shot CLI,
//                 minus process startup);
//   * warm-miss — first sight of each program through one ServeServer
//                 (shared symbols + cross-session closure memo, no cache
//                 entry yet);
//   * hit       — the same requests again, answered from the LRU cache.
//
// A mixed workload (several rounds over the corpus) then reports the
// daemon's own stats counters. A fleet regime follows: the same
// mixed-tenant workload partitioned by the consistent-hash ring over 1
// vs 3 in-process shards (one drain thread per shard — each shard
// serializes its own requests exactly like a real daemon), reporting
// aggregate requests/second. `--json PATH` writes everything;
// BENCH_serve.json in the repo root is this file's committed output from
// the development container (single hardware thread there, so the
// committed fleet speedup shows overhead, not scaling).
//
//===----------------------------------------------------------------------===//

#include "BenchMeta.h"
#include "api/Csdf.h"
#include "api/Wire.h"
#include "diag/DiagRenderer.h"
#include "driver/Serve.h"
#include "lang/Corpus.h"
#include "support/HashRing.h"
#include "support/Json.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace csdf;

namespace {

double nowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One analyze request line per corpus kernel, source inline so the bench
/// has no filesystem dependency.
std::vector<std::string> corpusRequests() {
  std::vector<std::string> Lines;
  for (const auto &[Name, Source] : corpus::allPatterns())
    Lines.push_back("{\"type\": \"analyze\", \"path\": \"" +
                    jsonEscape(Name + ".mpl") + "\", \"source\": \"" +
                    jsonEscape(Source) + "\"}");
  return Lines;
}

/// Feeds every line once, returning the mean per-request latency.
double feedOnce(ServeServer &Server, const std::vector<std::string> &Lines) {
  bool Shutdown = false;
  double Start = nowUs();
  for (const std::string &Line : Lines)
    Server.handleLine(Line, Shutdown);
  return (nowUs() - Start) / static_cast<double>(Lines.size());
}

/// The fleet workload: three rounds over the corpus with round-varied
/// fixed_np (every request a distinct cache key, so the work is real
/// analysis, not cache lookups) and a rotating tenant member — the
/// mixed-tenant traffic a router fronts.
std::vector<std::string> fleetRequests() {
  static const char *Tenants[] = {"ci", "editor", "batch"};
  std::vector<std::string> Lines;
  unsigned I = 0;
  for (int Round = 0; Round < 3; ++Round)
    for (const auto &[Name, Source] : corpus::allPatterns()) {
      api::WireRequest Req;
      Req.IdJson = std::to_string(I);
      Req.Type = "analyze";
      Req.Path = Name + ".mpl";
      Req.Source = Source;
      Req.Tenant = Tenants[I % 3];
      Req.Options.FixedNp = 4 + Round;
      Lines.push_back(api::wireRequestJson(Req, /*IncludeOptions=*/true));
      ++I;
    }
  return Lines;
}

/// Drains the workload through \p NShards in-process shards, each behind
/// its ring partition with one drain thread (a real shard serializes its
/// own requests; the fleet's parallelism is across shards). Returns
/// aggregate requests/second.
double fleetThroughput(unsigned NShards,
                       const std::vector<std::string> &Lines) {
  std::vector<std::unique_ptr<ServeServer>> Shards;
  HashRing Ring(64);
  for (unsigned S = 0; S < NShards; ++S) {
    Shards.push_back(std::make_unique<ServeServer>(ServeOptions()));
    Ring.addNode("shard" + std::to_string(S));
  }
  std::vector<std::vector<const std::string *>> Partition(NShards);
  for (const std::string &Line : Lines) {
    api::WireRequest Req;
    std::string Error;
    api::parseWireRequest(Line, 8ull << 20, api::RequestOptions(), Req,
                          Error);
    std::string Owner = Ring.owner(api::wireRoutingKey(Req));
    Partition[std::stoul(Owner.substr(5))].push_back(&Line);
  }
  double Start = nowUs();
  std::vector<std::thread> Drains;
  for (unsigned S = 0; S < NShards; ++S)
    Drains.emplace_back([&Shards, &Partition, S] {
      bool Shutdown = false;
      for (const std::string *Line : Partition[S])
        Shards[S]->handleLine(*Line, Shutdown);
    });
  for (std::thread &T : Drains)
    T.join();
  double WallUs = nowUs() - Start;
  return static_cast<double>(Lines.size()) / (WallUs / 1e6);
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--json" && I + 1 < Argc) {
      JsonPath = Argv[++I];
    } else {
      std::fprintf(stderr, "usage: %s [--json PATH]\n", Argv[0]);
      return 2;
    }
  }

  std::vector<std::string> Lines = corpusRequests();
  std::printf("=== csdf serve: request latency and cache effect ===\n");
  std::printf("corpus: %zu kernels, default options (cartesian)\n\n",
              Lines.size());

  // Regime 1: cold one-shot — what `csdf analyze` pays per file (minus
  // exec/startup), fresh symbols and memo every time.
  std::vector<corpus::NamedProgram> Patterns = corpus::allPatterns();
  double ColdUs;
  {
    double Start = nowUs();
    for (const auto &[Name, Source] : Patterns) {
      api::Analyzer An; // cold: per-request state
      api::AnalyzeRequest Req;
      Req.Path = Name + ".mpl";
      Req.Source = Source;
      An.analyze(Req);
    }
    ColdUs = (nowUs() - Start) / static_cast<double>(Patterns.size());
  }
  std::printf("cold one-shot      %10.1f us/request\n", ColdUs);

  // Regimes 2+3: one daemon; first pass misses (warm state only), second
  // pass hits the cache.
  ServeOptions SOpts;
  ServeServer Server(SOpts);
  double WarmMissUs = feedOnce(Server, Lines);
  std::printf("serve warm miss    %10.1f us/request  (%.2fx cold)\n",
              WarmMissUs, ColdUs / WarmMissUs);
  double HitUs = feedOnce(Server, Lines);
  std::printf("serve cache hit    %10.1f us/request  (%.0fx cold)\n", HitUs,
              ColdUs / HitUs);

  // Mixed workload: three more rounds over the same corpus — every
  // request a hit from here on; the daemon's own counters report it.
  for (int Round = 0; Round < 3; ++Round)
    feedOnce(Server, Lines);
  const ServeStats &Stats = Server.stats();
  std::printf("\nmixed workload: %llu requests, %llu hits / %llu misses, "
              "hit rate %.3f, %llu evictions\n",
              static_cast<unsigned long long>(Stats.Requests),
              static_cast<unsigned long long>(Stats.Hits),
              static_cast<unsigned long long>(Stats.Misses),
              Stats.hitRate(),
              static_cast<unsigned long long>(Stats.Evictions));

  bool CacheFaster = HitUs * 2 < ColdUs;
  std::printf("cache vs cold: %s\n",
              CacheFaster ? "measurably faster (>2x)" : "NOT faster — bug?");

  // Fleet regime: the same mixed-tenant workload over 1 vs 3 shards,
  // ring-partitioned exactly as `csdf router` would place it.
  std::vector<std::string> FleetLines = fleetRequests();
  double Rps1 = fleetThroughput(1, FleetLines);
  double Rps3 = fleetThroughput(3, FleetLines);
  std::printf("\nfleet (mixed-tenant, %zu requests, all-miss):\n"
              "  1 shard   %10.1f req/s\n"
              "  3 shards  %10.1f req/s  (%.2fx)\n",
              FleetLines.size(), Rps1, Rps3, Rps3 / Rps1);

  if (!JsonPath.empty()) {
    std::ofstream Out(JsonPath);
    char Buf[1024];
    std::snprintf(
        Buf, sizeof(Buf),
        "{\n"
        "  \"bench\": \"serve\",\n"
        "  \"meta\": %s,\n"
        "  \"corpus_kernels\": %zu,\n"
        "  \"cold_us_per_request\": %.1f,\n"
        "  \"warm_miss_us_per_request\": %.1f,\n"
        "  \"hit_us_per_request\": %.1f,\n"
        "  \"hit_speedup_vs_cold\": %.1f,\n"
        "  \"warm_miss_speedup_vs_cold\": %.2f,\n",
        bench::benchMetaJson().c_str(), Lines.size(), ColdUs, WarmMissUs,
        HitUs, ColdUs / HitUs, ColdUs / WarmMissUs);
    Out << Buf;
    Out << "  \"workload\": {\"requests\": " << Stats.Requests
        << ", \"hits\": " << Stats.Hits << ", \"misses\": " << Stats.Misses
        << ", \"evictions\": " << Stats.Evictions << ", \"hit_rate\": ";
    std::snprintf(Buf, sizeof(Buf), "%.4f", Stats.hitRate());
    Out << Buf << "},\n";
    std::snprintf(Buf, sizeof(Buf),
                  "  \"fleet\": {\"requests\": %zu, \"tenants\": 3, "
                  "\"shards_1_rps\": %.1f, \"shards_3_rps\": %.1f, "
                  "\"speedup_3v1\": %.2f}\n}\n",
                  FleetLines.size(), Rps1, Rps3, Rps3 / Rps1);
    Out << Buf;
    std::printf("wrote %s\n", JsonPath.c_str());
  }
  return CacheFaster ? 0 : 1;
}
