//===- bench/bench_patterns.cpp - E2/E10: pattern suite sweep ------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Two claims are regenerated here:
//
// E2  — the per-figure detection results: which corpus kernels each client
//       analysis (Section VII linear, Section VIII cartesian) converges
//       on, and that the detected topology matches the dynamic truth.
//
// E10 — the framework's complexity argument: because dataflow runs over
//       process *sets*, analysis cost depends on the number of roles in
//       the pattern, not on np. The sweep analyzes the broadcast kernel
//       pinned to growing np and shows flat analysis cost, while the
//       interpreter's execution cost grows linearly.
//
//===----------------------------------------------------------------------===//

#include "cfg/CfgBuilder.h"
#include "interp/Interpreter.h"
#include "lang/Corpus.h"
#include "lang/Parser.h"
#include "pcfg/Engine.h"
#include "topology/CommTopology.h"

#include <chrono>
#include <cstdio>

using namespace csdf;

namespace {

double msSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

void patternTable() {
  std::printf("--- E2: detection per kernel and client analysis ---\n");
  std::printf("%-22s %12s %12s %8s %9s %s\n", "kernel", "linear",
              "cartesian", "states", "time(ms)", "validation(np=8)");
  for (const auto &[Name, Source] : corpus::allPatterns()) {
    Program Prog = parseProgramOrDie(Source);
    Cfg Graph = buildCfg(Prog);

    AnalysisResult Linear =
        analyzeProgram(Graph, AnalysisOptions::simpleSymbolic());

    auto Start = std::chrono::steady_clock::now();
    AnalysisResult Cart = analyzeProgram(Graph, AnalysisOptions::cartesian());
    double Ms = msSince(Start);

    // Pipelined kernels need a concrete np (no loop variable names their
    // progress); retry the cartesian client pinned to np = 8.
    std::string CartVerdict = Cart.Converged ? "converged" : "Top";
    if (!Cart.Converged) {
      AnalysisOptions Fixed = AnalysisOptions::cartesian();
      Fixed.FixedNp = 8;
      Fixed.Params = {{"nrows", 2}, {"ncols", 4}, {"half", 4}};
      AnalysisResult CartFixed = analyzeProgram(Graph, Fixed);
      if (CartFixed.Converged) {
        Cart = std::move(CartFixed);
        CartVerdict = "conv(np=8)";
      }
    }

    // Validate the strongest result against a concrete run.
    const AnalysisResult &Best = Cart.Converged ? Cart : Linear;
    std::string Validation = "-";
    RunOptions Opts;
    Opts.NumProcs = 8;
    Opts.Params = {{"nrows", 2}, {"ncols", 4}, {"half", 4}};
    RunResult Run = runProgram(Graph, Opts);
    if (Run.finished()) {
      ValidationReport Report = validateTopology(Best, Run);
      if (!Best.Converged)
        Validation =
            Report.MissedPairs.empty() ? "sound" : "Top(incomplete)";
      else if (Report.MissedPairs.empty())
        Validation = Report.Exact ? "sound+exact" : "sound+inexact";
      else
        Validation = "UNSOUND";
    }
    std::printf("%-22s %12s %12s %8u %9.2f %s\n", Name.c_str(),
                Linear.Converged ? "converged" : "Top", CartVerdict.c_str(),
                Cart.StatesExplored, Ms, Validation.c_str());
  }
  std::printf("\n");
}

void npSweep() {
  std::printf("--- E10: analysis cost vs np (fan-out broadcast) ---\n");
  std::printf("%-8s %18s %8s %20s %12s\n", "np", "analysis(ms)", "states",
              "interpreter(ms)", "messages");
  Program Prog = parseProgramOrDie(corpus::fanOutBroadcast());
  Cfg Graph = buildCfg(Prog);
  for (int NP : {8, 16, 32, 64, 128, 256}) {
    AnalysisOptions Opts = AnalysisOptions::simpleSymbolic();
    Opts.FixedNp = NP;
    auto StartA = std::chrono::steady_clock::now();
    AnalysisResult Result = analyzeProgram(Graph, Opts);
    double AnalysisMs = msSince(StartA);

    RunOptions RunOpts;
    RunOpts.NumProcs = NP;
    auto StartI = std::chrono::steady_clock::now();
    RunResult Run = runProgram(Graph, RunOpts);
    double InterpMs = msSince(StartI);

    std::printf("%-8d %18.2f %8u %20.2f %12zu\n", NP, AnalysisMs,
                Result.StatesExplored, InterpMs, Run.Trace.size());
  }
  std::printf("\nsymbolic analysis (np unbounded): ");
  auto Start = std::chrono::steady_clock::now();
  AnalysisResult Sym =
      analyzeProgram(Graph, AnalysisOptions::simpleSymbolic());
  std::printf("%s in %.2f ms — one run covers every np\n",
              Sym.Converged ? "converged" : "Top", msSince(Start));
}

void aggregationAblation() {
  std::printf("\n--- E11: Section X communication-loop aggregation ---\n");
  std::printf("%-24s %-16s %8s %8s %10s\n", "kernel", "engine", "states",
              "records", "verdict");
  for (const char *Name :
       {"fan-out-broadcast", "gather-to-root", "broadcast-then-gather"}) {
    std::string Source;
    for (const auto &P : corpus::allPatterns())
      if (P.Name == Name)
        Source = P.Source;
    Program Prog = parseProgramOrDie(Source);
    Cfg Graph = buildCfg(Prog);
    for (auto [EngineName, Opts] :
         {std::pair{"per-iteration", AnalysisOptions::cartesian()},
          std::pair{"aggregated", AnalysisOptions::sectionX()}}) {
      AnalysisResult R = analyzeProgram(Graph, Opts);
      std::printf("%-24s %-16s %8u %8zu %10s\n", Name, EngineName,
                  R.StatesExplored, R.Matches.size(),
                  R.Converged ? "converged" : "Top");
    }
  }
  std::printf("  loop summaries match whole process-set blocks in one "
              "record; the two-phase kernel becomes fully symbolic.\n");
}

} // namespace

int main() {
  std::printf("=== E2 / E10 / E11: pattern detection sweep ===\n\n");
  patternTable();
  npSweep();
  aggregationAblation();
  return 0;
}
