//===- bench/bench_closure.cpp - E6: transitive closure cost -------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Section IX attributes the prototype's cost to constraint-graph
// transitive closures: the O(n^3) full closure, the O(n^2) single-edge
// repair, and STL-container storage with poor locality ("implementing
// dataflow state using efficient abstractions such as arrays instead of
// C++ STL containers" is optimization direction 3).
//
// This benchmark regenerates the shape of those claims:
//   * full closure scales ~n^3, incremental repair ~n^2;
//   * the dense-array backend beats the std::map backend by a wide margin.
//
//===----------------------------------------------------------------------===//

#include "numeric/ConstraintGraph.h"

#include "BenchMeta.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace csdf;

namespace {

/// Builds a chain + random-ish extra constraints over N variables.
ConstraintGraph buildGraph(DbmBackend Backend, int N, StatsRegistry *Stats,
                           SymbolTablePtr Syms = nullptr,
                           ClosureMemoPtr Memo = nullptr) {
  ConstraintGraph G(Backend, Stats, std::move(Syms), std::move(Memo));
  for (int I = 0; I + 1 < N; ++I)
    G.addLE("v" + std::to_string(I), "v" + std::to_string(I + 1),
            (I * 7) % 5);
  for (int I = 0; I < N; I += 3)
    G.addLE("v" + std::to_string((I * 5 + 2) % N),
            "v" + std::to_string((I * 11 + 7) % N), 3 + I % 4);
  return G;
}

/// Builds a mostly-unconstrained graph: all N variables exist, but only
/// every 16th pair carries a bound. The common shape for cold pCFG states
/// (most symbolic variables never interact); the closure kernel's
/// occupancy bitmap should collapse the O(n^3) to the few live rows.
ConstraintGraph buildSparseGraph(DbmBackend Backend, int N,
                                 StatsRegistry *Stats) {
  ConstraintGraph G(Backend, Stats);
  for (int I = 0; I < N; ++I)
    G.ensureVar("v" + std::to_string(I));
  for (int I = 0; I + 1 < N; I += 16)
    G.addLE("v" + std::to_string(I), "v" + std::to_string(I + 1),
            (I * 7) % 5);
  return G;
}

void BM_FullClosure(benchmark::State &State) {
  StatsRegistry Stats;
  auto Backend = static_cast<DbmBackend>(State.range(0));
  int N = static_cast<int>(State.range(1));
  for (auto _ : State) {
    State.PauseTiming();
    ConstraintGraph G = buildGraph(Backend, N, &Stats);
    State.ResumeTiming();
    G.close();
    benchmark::DoNotOptimize(G.isFeasible());
  }
  State.SetComplexityN(N);
}

void BM_IncrementalRepair(benchmark::State &State) {
  StatsRegistry Stats;
  auto Backend = static_cast<DbmBackend>(State.range(0));
  int N = static_cast<int>(State.range(1));
  ConstraintGraph G = buildGraph(Backend, N, &Stats);
  G.close();
  std::int64_t C = -1000;
  for (auto _ : State) {
    // Each tightening of one edge triggers the O(n^2) repair on the next
    // query.
    G.addLE("v0", "v" + std::to_string(N - 1), C--);
    benchmark::DoNotOptimize(G.isFeasible());
  }
  State.SetComplexityN(N);
}

void BM_MemoizedReclose(benchmark::State &State) {
  StatsRegistry Stats;
  auto Backend = static_cast<DbmBackend>(State.range(0));
  int N = static_cast<int>(State.range(1));
  auto Syms = std::make_shared<SymbolTable>();
  auto Memo = std::make_shared<ClosureMemo>();
  for (auto _ : State) {
    // Rebuilding an identical graph models the engine revisiting a pCFG
    // configuration: the first close is a full Floyd-Warshall (memo
    // miss), every later one adopts the memoized closed block.
    State.PauseTiming();
    ConstraintGraph G = buildGraph(Backend, N, &Stats, Syms, Memo);
    State.ResumeTiming();
    G.close();
    benchmark::DoNotOptimize(G.isFeasible());
  }
  State.counters["memo_hits"] =
      static_cast<double>(Stats.counter("cg.closure.memo.hits"));
  State.SetComplexityN(N);
}

void BM_JoinGraphs(benchmark::State &State) {
  StatsRegistry Stats;
  auto Backend = static_cast<DbmBackend>(State.range(0));
  int N = static_cast<int>(State.range(1));
  ConstraintGraph A = buildGraph(Backend, N, &Stats);
  ConstraintGraph B = buildGraph(Backend, N, &Stats);
  B.addLE("v1", "v0", 2);
  for (auto _ : State) {
    ConstraintGraph Copy = A;
    Copy.joinWith(B);
    benchmark::DoNotOptimize(Copy.numVars());
  }
}

} // namespace

BENCHMARK(BM_FullClosure)
    ->ArgsProduct({{static_cast<long>(DbmBackend::Dense),
                    static_cast<long>(DbmBackend::MapBased)},
                   {8, 16, 32, 64, 128}})
    ->Complexity(benchmark::oNCubed)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK(BM_IncrementalRepair)
    ->ArgsProduct({{static_cast<long>(DbmBackend::Dense),
                    static_cast<long>(DbmBackend::MapBased)},
                   {8, 16, 32, 64, 128}})
    ->Complexity(benchmark::oNSquared)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK(BM_MemoizedReclose)
    ->ArgsProduct({{static_cast<long>(DbmBackend::Dense),
                    static_cast<long>(DbmBackend::MapBased)},
                   {8, 16, 32, 64, 128}})
    ->Unit(benchmark::kMicrosecond);

BENCHMARK(BM_JoinGraphs)
    ->ArgsProduct({{static_cast<long>(DbmBackend::Dense),
                    static_cast<long>(DbmBackend::MapBased)},
                   {16, 64}})
    ->Unit(benchmark::kMicrosecond);

namespace {

const char *backendName(DbmBackend B) {
  return B == DbmBackend::Dense ? "dense" : "map";
}

/// One manually timed record for the machine-readable sweep.
struct JsonRecord {
  const char *Workload;
  DbmBackend Backend;
  int N;
  std::int64_t WallNs;
  std::int64_t FullCalls;
  std::int64_t IncrCalls;
  std::int64_t MemoHits;
};

std::int64_t nowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Repeats full closure / incremental repair / copy+join workloads under a
/// private StatsRegistry, timing total wall clock per workload.
void sweepInto(std::vector<JsonRecord> &Records, DbmBackend Backend, int N,
               int Repeats) {
  StatsRegistry Stats;
  {
    Stats.clear();
    std::int64_t Start = nowNs();
    for (int R = 0; R < Repeats; ++R) {
      ConstraintGraph G = buildGraph(Backend, N, &Stats);
      G.close();
      benchmark::DoNotOptimize(G.isFeasible());
    }
    Records.push_back({"full_closure", Backend, N, nowNs() - Start,
                       Stats.counter("cg.closure.full.calls"),
                       Stats.counter("cg.closure.incr.calls"), 0});
  }
  {
    Stats.clear();
    auto Syms = std::make_shared<SymbolTable>();
    auto Memo = std::make_shared<ClosureMemo>();
    std::int64_t Start = nowNs();
    for (int R = 0; R < Repeats; ++R) {
      ConstraintGraph G = buildGraph(Backend, N, &Stats, Syms, Memo);
      G.close();
      benchmark::DoNotOptimize(G.isFeasible());
    }
    Records.push_back({"memoized_reclose", Backend, N, nowNs() - Start,
                       Stats.counter("cg.closure.full.calls"),
                       Stats.counter("cg.closure.incr.calls"),
                       Stats.counter("cg.closure.memo.hits")});
  }
  {
    Stats.clear();
    ConstraintGraph G = buildGraph(Backend, N, &Stats);
    G.close();
    std::int64_t C = -1000;
    std::int64_t Start = nowNs();
    for (int R = 0; R < Repeats; ++R) {
      G.addLE("v0", "v" + std::to_string(N - 1), C--);
      benchmark::DoNotOptimize(G.isFeasible());
    }
    Records.push_back({"incremental_repair", Backend, N, nowNs() - Start,
                       Stats.counter("cg.closure.full.calls"),
                       Stats.counter("cg.closure.incr.calls"), 0});
  }
  {
    Stats.clear();
    ConstraintGraph A = buildGraph(Backend, N, &Stats);
    ConstraintGraph B = buildGraph(Backend, N, &Stats);
    B.addLE("v1", "v0", 2);
    std::int64_t Start = nowNs();
    for (int R = 0; R < Repeats; ++R) {
      ConstraintGraph Copy = A;
      Copy.joinWith(B);
      benchmark::DoNotOptimize(Copy.numVars());
    }
    Records.push_back({"copy_join", Backend, N, nowNs() - Start,
                       Stats.counter("cg.closure.full.calls"),
                       Stats.counter("cg.closure.incr.calls"), 0});
  }
  {
    // Cold close of a mostly-unconstrained graph: the sparse-row-skip
    // win. The dense full_closure record above is the baseline.
    Stats.clear();
    std::int64_t Start = nowNs();
    for (int R = 0; R < Repeats; ++R) {
      ConstraintGraph G = buildSparseGraph(Backend, N, &Stats);
      G.close();
      benchmark::DoNotOptimize(G.isFeasible());
    }
    Records.push_back({"sparse_cold", Backend, N, nowNs() - Start,
                       Stats.counter("cg.closure.full.calls"),
                       Stats.counter("cg.closure.incr.calls"), 0});
  }
}

/// Dense-backend full closures at blocked-FW-relevant sizes (multiple
/// tiles per axis), the cache-blocking tuning record.
void blockedSweepInto(std::vector<JsonRecord> &Records, int N, int Repeats) {
  StatsRegistry Stats;
  std::int64_t Start = nowNs();
  for (int R = 0; R < Repeats; ++R) {
    ConstraintGraph G = buildGraph(DbmBackend::Dense, N, &Stats);
    G.close();
    benchmark::DoNotOptimize(G.isFeasible());
  }
  Records.push_back({"blocked_sweep", DbmBackend::Dense, N, nowNs() - Start,
                     Stats.counter("cg.closure.full.calls"),
                     Stats.counter("cg.closure.incr.calls"), 0});
}

/// Writes the sweep as a JSON array so CI can archive closure cost per
/// commit.
int runJsonSweep(const std::string &Path, const std::vector<int> &Sizes) {
  std::vector<JsonRecord> Records;
  for (DbmBackend Backend : {DbmBackend::Dense, DbmBackend::MapBased})
    for (int N : Sizes)
      sweepInto(Records, Backend, N, /*Repeats=*/20);
  for (int N : {64, 128, 256})
    blockedSweepInto(Records, N, /*Repeats=*/20);

  std::FILE *Out = std::fopen(Path.c_str(), "w");
  if (!Out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", Path.c_str());
    return 1;
  }
  std::fprintf(Out, "{\n\"meta\": %s,\n\"records\": [\n",
               bench::benchMetaJson().c_str());
  for (size_t I = 0; I < Records.size(); ++I) {
    const JsonRecord &R = Records[I];
    std::fprintf(Out,
                 "  {\"workload\": \"%s\", \"backend\": \"%s\", \"n\": %d, "
                 "\"wall_ns\": %lld, \"full_closures\": %lld, "
                 "\"incremental_closures\": %lld, \"memo_hits\": %lld}%s\n",
                 R.Workload, backendName(R.Backend), R.N,
                 static_cast<long long>(R.WallNs),
                 static_cast<long long>(R.FullCalls),
                 static_cast<long long>(R.IncrCalls),
                 static_cast<long long>(R.MemoHits),
                 I + 1 < Records.size() ? "," : "");
  }
  std::fprintf(Out, "]\n}\n");
  std::fclose(Out);
  std::printf("wrote %zu records to %s\n", Records.size(), Path.c_str());
  return 0;
}

} // namespace

// Custom main instead of BENCHMARK_MAIN(): `--json <path> [--n N]...`
// switches to a deterministic manual sweep with machine-readable output;
// without it the google-benchmark suite runs unchanged.
int main(int argc, char **argv) {
  std::string JsonPath;
  std::vector<int> Sizes;
  std::vector<char *> Rest = {argv[0]};
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--json") == 0 && I + 1 < argc)
      JsonPath = argv[++I];
    else if (std::strcmp(argv[I], "--n") == 0 && I + 1 < argc)
      Sizes.push_back(std::atoi(argv[++I]));
    else
      Rest.push_back(argv[I]);
  }
  if (!JsonPath.empty()) {
    if (Sizes.empty())
      Sizes = {8, 16, 32, 64};
    return runJsonSweep(JsonPath, Sizes);
  }
  int RestArgc = static_cast<int>(Rest.size());
  benchmark::Initialize(&RestArgc, Rest.data());
  if (benchmark::ReportUnrecognizedArguments(RestArgc, Rest.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
