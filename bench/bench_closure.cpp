//===- bench/bench_closure.cpp - E6: transitive closure cost -------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Section IX attributes the prototype's cost to constraint-graph
// transitive closures: the O(n^3) full closure, the O(n^2) single-edge
// repair, and STL-container storage with poor locality ("implementing
// dataflow state using efficient abstractions such as arrays instead of
// C++ STL containers" is optimization direction 3).
//
// This benchmark regenerates the shape of those claims:
//   * full closure scales ~n^3, incremental repair ~n^2;
//   * the dense-array backend beats the std::map backend by a wide margin.
//
//===----------------------------------------------------------------------===//

#include "numeric/ConstraintGraph.h"

#include <benchmark/benchmark.h>

using namespace csdf;

namespace {

/// Builds a chain + random-ish extra constraints over N variables.
ConstraintGraph buildGraph(DbmBackend Backend, int N,
                           StatsRegistry *Stats) {
  ConstraintGraph G(Backend, Stats);
  for (int I = 0; I + 1 < N; ++I)
    G.addLE("v" + std::to_string(I), "v" + std::to_string(I + 1),
            (I * 7) % 5);
  for (int I = 0; I < N; I += 3)
    G.addLE("v" + std::to_string((I * 5 + 2) % N),
            "v" + std::to_string((I * 11 + 7) % N), 3 + I % 4);
  return G;
}

void BM_FullClosure(benchmark::State &State) {
  StatsRegistry Stats;
  auto Backend = static_cast<DbmBackend>(State.range(0));
  int N = static_cast<int>(State.range(1));
  for (auto _ : State) {
    State.PauseTiming();
    ConstraintGraph G = buildGraph(Backend, N, &Stats);
    State.ResumeTiming();
    G.close();
    benchmark::DoNotOptimize(G.isFeasible());
  }
  State.SetComplexityN(N);
}

void BM_IncrementalRepair(benchmark::State &State) {
  StatsRegistry Stats;
  auto Backend = static_cast<DbmBackend>(State.range(0));
  int N = static_cast<int>(State.range(1));
  ConstraintGraph G = buildGraph(Backend, N, &Stats);
  G.close();
  std::int64_t C = -1000;
  for (auto _ : State) {
    // Each tightening of one edge triggers the O(n^2) repair on the next
    // query.
    G.addLE("v0", "v" + std::to_string(N - 1), C--);
    benchmark::DoNotOptimize(G.isFeasible());
  }
  State.SetComplexityN(N);
}

void BM_JoinGraphs(benchmark::State &State) {
  StatsRegistry Stats;
  auto Backend = static_cast<DbmBackend>(State.range(0));
  int N = static_cast<int>(State.range(1));
  ConstraintGraph A = buildGraph(Backend, N, &Stats);
  ConstraintGraph B = buildGraph(Backend, N, &Stats);
  B.addLE("v1", "v0", 2);
  for (auto _ : State) {
    ConstraintGraph Copy = A;
    Copy.joinWith(B);
    benchmark::DoNotOptimize(Copy.numVars());
  }
}

} // namespace

BENCHMARK(BM_FullClosure)
    ->ArgsProduct({{static_cast<long>(DbmBackend::Dense),
                    static_cast<long>(DbmBackend::MapBased)},
                   {8, 16, 32, 64, 128}})
    ->Complexity(benchmark::oNCubed)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK(BM_IncrementalRepair)
    ->ArgsProduct({{static_cast<long>(DbmBackend::Dense),
                    static_cast<long>(DbmBackend::MapBased)},
                   {8, 16, 32, 64, 128}})
    ->Complexity(benchmark::oNSquared)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK(BM_JoinGraphs)
    ->ArgsProduct({{static_cast<long>(DbmBackend::Dense),
                    static_cast<long>(DbmBackend::MapBased)},
                   {16, 64}})
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
