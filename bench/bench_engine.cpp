//===- bench/bench_engine.cpp - pCFG engine micro-timings ----------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// google-benchmark timings for complete pCFG analyses of each corpus
// kernel, per client analysis and per constraint-graph backend. Useful
// for tracking engine performance regressions; the report-style
// experiment binaries interpret the numbers against the paper.
//
//===----------------------------------------------------------------------===//

#include "cfg/CfgBuilder.h"
#include "lang/Corpus.h"
#include "lang/Parser.h"
#include "pcfg/Engine.h"

#include <benchmark/benchmark.h>

using namespace csdf;

namespace {

struct Kernel {
  Program Prog;
  Cfg Graph;
};

Kernel kernel(const std::string &Source) {
  Kernel K;
  K.Prog = parseProgramOrDie(Source);
  K.Graph = buildCfg(K.Prog);
  return K;
}

void analyzeLoop(benchmark::State &State, const std::string &Source,
                 AnalysisOptions Opts) {
  Kernel K = kernel(Source);
  StatsRegistry Local;
  unsigned States = 0;
  for (auto _ : State) {
    AnalysisResult R = analyzeProgram(K.Graph, Opts, &Local);
    States = R.StatesExplored;
    benchmark::DoNotOptimize(R.Matches.size());
  }
  State.counters["states"] = States;
}

void BM_AnalyzeFigure2(benchmark::State &State) {
  analyzeLoop(State, corpus::figure2Exchange(),
              AnalysisOptions::simpleSymbolic());
}

void BM_AnalyzeBroadcast(benchmark::State &State) {
  analyzeLoop(State, corpus::fanOutBroadcast(),
              AnalysisOptions::simpleSymbolic());
}

void BM_AnalyzeBroadcastMapBackend(benchmark::State &State) {
  AnalysisOptions Opts = AnalysisOptions::simpleSymbolic();
  Opts.Backend = DbmBackend::MapBased;
  analyzeLoop(State, corpus::fanOutBroadcast(), Opts);
}

void BM_AnalyzeExchangeWithRoot(benchmark::State &State) {
  analyzeLoop(State, corpus::exchangeWithRoot(),
              AnalysisOptions::simpleSymbolic());
}

void BM_AnalyzeTransposeSquare(benchmark::State &State) {
  analyzeLoop(State, corpus::transposeSquare(),
              AnalysisOptions::cartesian());
}

void BM_AnalyzeNascg(benchmark::State &State) {
  analyzeLoop(State, corpus::nascgTranspose(), AnalysisOptions::cartesian());
}

void BM_AnalyzeShiftFixedNp(benchmark::State &State) {
  AnalysisOptions Opts = AnalysisOptions::cartesian();
  Opts.FixedNp = State.range(0);
  analyzeLoop(State, corpus::neighborShift(), Opts);
}

} // namespace

BENCHMARK(BM_AnalyzeFigure2)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_AnalyzeBroadcast)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_AnalyzeBroadcastMapBackend)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_AnalyzeExchangeWithRoot)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_AnalyzeTransposeSquare)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_AnalyzeNascg)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_AnalyzeShiftFixedNp)
    ->Arg(6)
    ->Arg(12)
    ->Arg(24)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
