//===- bench/BenchMeta.h - Shared benchmark metadata stamp ---------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One JSON "meta" object stamped on every bench's --json output, so the
/// committed BENCH_*.json artifacts record the environment they were
/// measured in (hardware threads, compiler, build flags). Without this
/// the before/after tables in EXPERIMENTS.md can silently compare numbers
/// from different machines or build configurations.
///
/// Usage: emit benchMetaJson() as the value of a top-level "meta" key.
///
//===----------------------------------------------------------------------===//

#ifndef CSDF_BENCH_BENCHMETA_H
#define CSDF_BENCH_BENCHMETA_H

#include <sstream>
#include <string>
#include <thread>

namespace csdf {
namespace bench {

/// Build flags the bench binaries were compiled with, injected by
/// bench/CMakeLists.txt. Falls back to "unknown" when built outside the
/// repo's CMake (e.g. a hand compile).
#ifndef CSDF_BENCH_BUILD_FLAGS
#define CSDF_BENCH_BUILD_FLAGS "unknown"
#endif

inline std::string benchMetaCompiler() {
#if defined(__clang__)
  return std::string("clang ") + __VERSION__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

/// The shared metadata object: {"hardware_threads": N, "compiler": "...",
/// "build_flags": "..."}. Compact one-line form so callers can splice it
/// into hand-rolled JSON writers at any indentation.
inline std::string benchMetaJson() {
  std::ostringstream Out;
  Out << "{\"hardware_threads\": " << std::thread::hardware_concurrency()
      << ", \"compiler\": \"" << benchMetaCompiler() << "\""
      << ", \"build_flags\": \"" << CSDF_BENCH_BUILD_FLAGS << "\"}";
  return Out.str();
}

} // namespace bench
} // namespace csdf

#endif // CSDF_BENCH_BENCHMETA_H
