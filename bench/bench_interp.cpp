//===- bench/bench_interp.cpp - E9: simulator substrate ------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Benchmarks the concrete message-passing interpreter (the ground-truth
// substrate): execution cost vs np for the corpus kernels, and the cost
// of different schedulers — whose *results* are identical by the
// interleaving-obliviousness property of Section III (asserted here).
//
//===----------------------------------------------------------------------===//

#include "cfg/CfgBuilder.h"
#include "interp/Interpreter.h"
#include "lang/Corpus.h"
#include "lang/Parser.h"

#include <benchmark/benchmark.h>

using namespace csdf;

namespace {

struct Kernel {
  Program Prog;
  Cfg Graph;
};

Kernel makeKernel(const std::string &Source) {
  Kernel K;
  K.Prog = parseProgramOrDie(Source);
  K.Graph = buildCfg(K.Prog);
  return K;
}

void BM_InterpBroadcast(benchmark::State &State) {
  Kernel K = makeKernel(corpus::fanOutBroadcast());
  RunOptions Opts;
  Opts.NumProcs = static_cast<int>(State.range(0));
  for (auto _ : State) {
    RunResult R = runProgram(K.Graph, Opts);
    if (!R.finished())
      State.SkipWithError("run did not finish");
    benchmark::DoNotOptimize(R.Trace.size());
  }
  State.SetItemsProcessed(State.iterations() * (State.range(0) - 1));
}

void BM_InterpTranspose(benchmark::State &State) {
  Kernel K = makeKernel(corpus::transposeSquare());
  int NRows = static_cast<int>(State.range(0));
  RunOptions Opts;
  Opts.NumProcs = NRows * NRows;
  Opts.Params = {{"nrows", NRows}};
  for (auto _ : State) {
    RunResult R = runProgram(K.Graph, Opts);
    if (!R.finished())
      State.SkipWithError("run did not finish");
    benchmark::DoNotOptimize(R.Trace.size());
  }
}

void BM_InterpExchangeWithRoot(benchmark::State &State) {
  Kernel K = makeKernel(corpus::exchangeWithRoot());
  RunOptions Opts;
  Opts.NumProcs = static_cast<int>(State.range(0));
  for (auto _ : State) {
    RunResult R = runProgram(K.Graph, Opts);
    benchmark::DoNotOptimize(R.Trace.size());
  }
}

void BM_SchedulerComparison(benchmark::State &State) {
  Kernel K = makeKernel(corpus::exchangeWithRoot());
  RunOptions Opts;
  Opts.NumProcs = 32;
  RoundRobinScheduler RR;
  RunResult Reference = runProgram(K.Graph, Opts, RR);
  for (auto _ : State) {
    RunResult R = [&] {
      switch (State.range(0)) {
      case 0: {
        RoundRobinScheduler S;
        return runProgram(K.Graph, Opts, S);
      }
      case 1: {
        LifoScheduler S;
        return runProgram(K.Graph, Opts, S);
      }
      default: {
        RandomScheduler S(static_cast<std::uint64_t>(State.iterations()) +
                          1);
        return runProgram(K.Graph, Opts, S);
      }
      }
    }();
    // Interleaving-obliviousness: all schedulers agree on the outcome.
    if (R.FinalVars != Reference.FinalVars)
      State.SkipWithError("schedule changed the outcome!");
    benchmark::DoNotOptimize(R.Trace.size());
  }
}

} // namespace

BENCHMARK(BM_InterpBroadcast)
    ->RangeMultiplier(4)
    ->Range(8, 2048)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_InterpTranspose)
    ->DenseRange(4, 20, 4)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_InterpExchangeWithRoot)
    ->RangeMultiplier(4)
    ->Range(8, 512)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SchedulerComparison)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
