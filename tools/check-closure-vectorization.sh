#!/usr/bin/env bash
# Verifies the DBM closure kernel's min-plus inner loop actually
# auto-vectorizes. The kernel's whole premise (DESIGN.md "Numeric core
# representation", v2) is that the branchless compare/select loop compiles
# to SIMD compare/min lanes; a toolchain or flag regression that silently
# drops back to scalar code would erase most of the speedup while every
# test still passes. CI runs this after the build.
#
# Strategy: recompile ClosureKernel.cpp exactly as the build does (same
# include path, -O3 + the SIMD flags) but with GCC's vectorization report
# enabled, and require a "loop vectorized" remark on the anchored inner
# loop in minPlusRow. Invoking the compiler directly (not through the
# build) keeps this immune to ccache/ninja skipping the compile.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
CXX="${CXX:-g++}"
SIMD_FLAGS="${CSDF_CLOSURE_SIMD:--msse4.2}"
SRC="$REPO_ROOT/src/numeric/ClosureKernel.cpp"

ANCHOR_LINE="$(grep -n 'CSDF-VEC-ANCHOR' "$SRC" | cut -d: -f1 | head -n1)"
if [[ -z "$ANCHOR_LINE" ]]; then
  echo "error: CSDF-VEC-ANCHOR marker not found in $SRC" >&2
  exit 1
fi

REPORT="$("$CXX" -std=c++20 -O3 $SIMD_FLAGS -I "$REPO_ROOT/src" \
  -fopt-info-vec-optimized -c "$SRC" -o /dev/null 2>&1 || true)"

echo "$REPORT"

# The inner loop may be reported at the anchor line or (after inlining)
# a couple of lines into the loop body.
if echo "$REPORT" | grep -E "ClosureKernel\.cpp:($ANCHOR_LINE|$((ANCHOR_LINE + 1))|$((ANCHOR_LINE + 2))|$((ANCHOR_LINE + 3))|$((ANCHOR_LINE + 4))):[0-9]+: optimized: loop vectorized" >/dev/null; then
  echo "OK: closure kernel inner loop vectorized (anchor at line $ANCHOR_LINE, flags: $SIMD_FLAGS)"
  exit 0
fi

echo "error: closure kernel inner loop (ClosureKernel.cpp:$ANCHOR_LINE) was NOT vectorized with '$SIMD_FLAGS'" >&2
exit 1
