//===- tools/csdf-fuzz.cpp - Randomized pipeline smoke fuzzer --------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Feeds randomly mutated variants of the MPL corpus through the full
// pipeline (parse -> sema -> cfg -> analyze) under a RecoveryScope and a
// small AnalysisBudget. The invariant under test is the failure model:
// no input, however mangled, may abort the process or hang past its
// budget. Crashes surface as a nonzero exit (the CI job checks $?).
//
//   csdf-fuzz [--seconds N] [--iters N] [--seed N] [--verbose]
//
// Defaults: 30 seconds wall clock (or 10000 iterations, whichever comes
// first), seed 1. Exit 0 = survived, 1 = a recovered EngineError was seen
// (reported, still counts as survival unless --strict), 2 = bad usage.
//
//===----------------------------------------------------------------------===//

#include "analysis/Clients.h"
#include "cfg/CfgBuilder.h"
#include "lang/Corpus.h"
#include "lang/Parser.h"
#include "lang/Sema.h"
#include "support/Budget.h"
#include "support/ErrorHandling.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <vector>

using namespace csdf;

namespace {

/// Splicing fragments that steer mutants toward interesting shapes
/// (communication statements, nesting, budget-stressing loops).
const char *Fragments[] = {
    "send x -> id + 1;\n",
    "recv y <- id - 1;\n",
    "recv y <- any;\n",
    "isend x -> id + 1 req r;\n",
    "irecv y <- id - 1 req r;\n",
    "irecv y <- any tag 3 req r;\n",
    "wait r;\n",
    "waitall;\n",
    "if id == 0 then\n",
    "end\n",
    "while i < np do\n i = i + 1;\n",
    "x = x * 2 + id;\n",
    "print x;\n",
    "assume np == 2 * half;\n",
};

std::string mutate(const std::string &Base, std::mt19937_64 &Rng) {
  std::string S = Base;
  std::uniform_int_distribution<int> OpDist(0, 5);
  int Rounds = 1 + static_cast<int>(Rng() % 4);
  for (int R = 0; R < Rounds; ++R) {
    if (S.empty())
      break;
    size_t At = Rng() % S.size();
    switch (OpDist(Rng)) {
    case 0: // Truncate.
      S.resize(At);
      break;
    case 1: // Delete a span.
      S.erase(At, 1 + Rng() % 16);
      break;
    case 2: // Duplicate a span.
      S.insert(At, S.substr(At, 1 + Rng() % 24));
      break;
    case 3: // Flip a character.
      S[At] = static_cast<char>(' ' + Rng() % 95);
      break;
    case 4: // Splice a fragment.
      S.insert(At, Fragments[Rng() % (sizeof(Fragments) /
                                      sizeof(Fragments[0]))]);
      break;
    case 5: { // Swap two spans.
      size_t Bt = Rng() % S.size();
      size_t N = 1 + Rng() % 8;
      std::string A = S.substr(At, N), B = S.substr(Bt, N);
      S.replace(At, A.size(), B);
      break;
    }
    }
  }
  return S;
}

} // namespace

int main(int Argc, char **Argv) {
  std::uint64_t Seconds = 30, MaxIters = 10000, Seed = 1;
  bool Verbose = false, Strict = false;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> std::uint64_t {
      return I + 1 < Argc ? std::strtoull(Argv[++I], nullptr, 10) : 0;
    };
    if (Arg == "--seconds")
      Seconds = Next();
    else if (Arg == "--iters")
      MaxIters = Next();
    else if (Arg == "--seed")
      Seed = Next();
    else if (Arg == "--verbose")
      Verbose = true;
    else if (Arg == "--strict")
      Strict = true;
    else {
      std::fprintf(stderr,
                   "csdf-fuzz: error: unknown option '%s' "
                   "(--seconds N --iters N --seed N --verbose --strict)\n",
                   Arg.c_str());
      return 2;
    }
  }

  std::vector<std::string> Bases;
  for (const corpus::NamedProgram &P : corpus::allPatterns())
    Bases.push_back(P.Source);
  Bases.push_back(corpus::messageLeak());
  Bases.push_back(corpus::headToHeadDeadlock());
  Bases.push_back(corpus::tagMismatch());
  Bases.push_back(corpus::ringShift());
  Bases.push_back(corpus::bufferRace());
  Bases.push_back(corpus::requestLeak());
  Bases.push_back(corpus::wildcardRace());

  std::mt19937_64 Rng(Seed);
  auto Start = std::chrono::steady_clock::now();
  auto Expired = [&] {
    return std::chrono::duration_cast<std::chrono::seconds>(
               std::chrono::steady_clock::now() - Start)
               .count() >= static_cast<long long>(Seconds);
  };

  std::uint64_t Iters = 0, Parsed = 0, Analyzed = 0, Degraded = 0,
                Internal = 0;
  for (; Iters < MaxIters && !Expired(); ++Iters) {
    std::string Source = mutate(Bases[Rng() % Bases.size()], Rng);
    if (Verbose) {
      std::fprintf(stderr, "iter %llu:\n--- input ---\n%s\n---\n",
                   static_cast<unsigned long long>(Iters), Source.c_str());
      std::fflush(stderr);
    }

    ParseResult P = parseProgram(Source);
    if (!P.succeeded())
      continue;
    ++Parsed;
    SemaResult Sm = checkProgram(P.Prog);
    if (Sm.hasErrors())
      continue;

    // Tight budget: a mutant that explodes combinatorially must degrade
    // to Top within the deadline, not hang the fuzzer.
    AnalysisBudget Budget;
    Budget.DeadlineMs = 200;
    Budget.MaxMemoryMb = 64;
    Budget.MaxProverSteps = 200000;
    Budget.begin();
    AnalysisOptions Opts = AnalysisOptions::cartesian();
    Opts.Budget = &Budget;

    try {
      RecoveryScope Recover;
      Cfg Graph = buildCfg(P.Prog);
      ClientReport R = runClients(Graph, Opts);
      ++Analyzed;
      if (R.Analysis.Outcome.internalError()) {
        ++Internal;
        std::fprintf(stderr, "csdf-fuzz: internal error (iter %llu): %s\n",
                     static_cast<unsigned long long>(Iters),
                     R.Analysis.Outcome.Reason.c_str());
        if (Verbose)
          std::fprintf(stderr, "--- input ---\n%s\n---\n", Source.c_str());
      } else if (!R.Analysis.Outcome.complete()) {
        ++Degraded;
      }
    } catch (const EngineError &E) {
      ++Internal;
      std::fprintf(stderr, "csdf-fuzz: recovered EngineError (iter %llu): "
                           "%s\n",
                   static_cast<unsigned long long>(Iters), E.what());
      if (Verbose)
        std::fprintf(stderr, "--- input ---\n%s\n---\n", Source.c_str());
    }
  }

  std::printf("csdf-fuzz: %llu iteration(s), %llu parsed, %llu analyzed, "
              "%llu degraded, %llu internal error(s)\n",
              static_cast<unsigned long long>(Iters),
              static_cast<unsigned long long>(Parsed),
              static_cast<unsigned long long>(Analyzed),
              static_cast<unsigned long long>(Degraded),
              static_cast<unsigned long long>(Internal));
  return Strict && Internal ? 1 : 0;
}
