//===- tools/csdf-cli.cpp - Command-line driver ---------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The command-line front door to the library:
//
//   csdf check    <file.mpl>                  parse + semantic checks
//   csdf cfg      <file.mpl>                  control-flow graph as DOT
//   csdf run      <file.mpl> [--np N] ...     execute on the interpreter
//   csdf analyze  <file.mpl> [options]        pCFG analysis: topology,
//                                             constants, bug candidates
//   csdf topo     <file.mpl> [options]        matched topology as DOT
//   csdf lint     <file.mpl> [options]        static-analysis pass suite
//                                             with structured diagnostics
//   csdf batch    <dir|filelist> [options]    crash-isolated analysis of a
//                                             whole corpus, JSON report
//   csdf serve    [options]                   persistent analysis daemon:
//                                             JSON-lines requests on stdio
//                                             or a unix socket, answered
//                                             from a warm result cache
//                                             and an optional crash-safe
//                                             on-disk store (--store-dir)
//   csdf client   <type> [file] --socket P    one-shot request against a
//                                             serve daemon or router, with
//                                             overload-aware backoff and
//                                             prompt failover retry on
//                                             dropped connections
//   csdf router   [options]                   fleet front end: consistent-
//                                             hash routing of requests over
//                                             N serve daemons, failover to
//                                             ring successors, per-tenant
//                                             admission control
//   csdf lsp      [options]                   Language Server Protocol
//                                             server on stdio: lint
//                                             diagnostics on every edit,
//                                             via the incremental pipeline
//
// Analysis requests (analyze, lint, batch, serve) all go through the
// csdf::api facade, so the shared request flags parse and validate
// identically everywhere:
//   --client linear|cartesian|sectionx   client analysis (default cartesian)
//   --fixed-np N                pin np for the analysis
//   --param NAME=V              grid parameter (both run and analysis)
//   --threads N                 parallel worklist drain; results are
//                               bit-identical at any N
//   --max-states N              engine state budget (deterministic trip)
//   --deadline-ms N             cooperative wall-clock deadline; past it
//                               the analysis degrades to Top, not a hang
//   --max-memory-mb N           soft ceiling on live DBM bytes
//   --prover-steps N            HSM prover search-step budget
//   --no-match-nondet           suppress match-nondet reports at wildcard
//                               receives (Top degradation still applies)
//   --test-hooks                honor `# csdf-test:` failure injection
//
// Interpreter options (run, analyze --validate):
//   --np N                      interpreter process count (default 8)
//   --scheduler rr|lifo|random  interpreter schedule (default rr)
//   --seed N                    seed for the random scheduler
//   --validate                  after analyze: compare against a run
//   --stats                     after analyze/lint: dump StatsRegistry
//                               counters and timers to stderr
//
// Analyze options:
//   --format text|json          json prints the same per-file verdict
//                               object as a `csdf batch --report` entry
//
// Lint options:
//   --format text|json|sarif    output format (default text)
//   --Werror                    promote warnings to errors
//   --min-severity note|warning|error   drop findings below this level
//   --disable <pass>            skip a pass (repeatable); `csdf lint
//                               --list-passes` prints all pass names
//
// Batch options:
//   --jobs N                    concurrent children or threads (default 1)
//   --mode fork|threads         fork: rlimited child per file (crash
//                               isolation); threads: in-process pool
//                               sharing one cross-session closure memo
//   --timeout-ms N              per-file wall timeout — SIGKILL in fork
//                               mode, cooperative deadline in threads mode
//   --report out.json           write the per-file JSON report here
//
// Serve options:
//   --cache-size N              result-cache entries (default 256; 0 off)
//   --socket PATH               listen on a unix socket instead of stdio
//   --store-dir DIR             durable on-disk result store: atomic,
//                               checksummed records; a restarted daemon
//                               serves them byte-identically
//   --store-max-mb N            store byte budget in MB (default 256)
//   --max-inflight N            connections served concurrently (def. 8)
//   --queue-depth N             connections allowed to wait beyond that
//                               (def. 16); more are shed with a
//                               structured `overloaded` error
//   --memo-dir DIR              snapshot the warm closure memo here and
//                               adopt it back on startup, so a restarted
//                               daemon is warm on near-miss (edited
//                               source) workloads too
//   --memo-flush-every N        snapshot after N analyzed requests (16)
//   --fault SPEC                arm fault-injection sites (also the
//                               CSDF_FAULT env var); `--fault list`
//                               prints the site catalog
//
// Client options (plus the shared analysis flags and lint flags):
//   --socket PATH               the daemon's socket (required)
//   --send-source               embed the file's bytes as "source"
//   --tenant NAME               tenant name for router admission quotas
//   --verbose                   narrate attempts + answering shard (stderr)
//   --retries N  --retry-base-ms N  --retry-cap-ms N
//
// Router options:
//   --socket PATH               the router's own listening socket (req.)
//   --backend PATH              a shard's socket (repeatable; >= 1 req.)
//   --replicas N                ring virtual nodes per shard (default 64)
//   --tenant-inflight N         per-tenant concurrent forwards (default 4)
//   --tenant-queue N            per-tenant waiters beyond that (default 8)
//   --health-interval-ms N      health-probe period (default 200; 0 off)
//
// Exit codes (analyze, batch, lint):
//   0  complete, no findings
//   1  degraded to Top and/or findings (bugs, lint diagnostics,
//      front-end errors); for batch: any non-complete file
//   2  usage or IO error (bad flag, unreadable or empty input)
//   3  internal error (recovered engine invariant violation)
//
//===----------------------------------------------------------------------===//

#include "analysis/Clients.h"
#include "analysis/Lint.h"
#include "api/Csdf.h"
#include "baseline/MpiCfg.h"
#include "diag/DiagRenderer.h"
#include "cfg/CfgBuilder.h"
#include "cfg/CfgDot.h"
#include "driver/Client.h"
#include "driver/Lsp.h"
#include "driver/Router.h"
#include "driver/Serve.h"
#include "driver/Session.h"
#include "support/Fault.h"
#include "interp/Interpreter.h"
#include "lang/Parser.h"
#include "lang/Sema.h"
#include "pcfg/Engine.h"
#include "support/Stats.h"
#include "topology/CommTopology.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <string>
#include <vector>

using namespace csdf;

namespace {

struct CliOptions {
  std::string Command;
  std::string File;
  /// The shared analysis request options (client preset, engine
  /// overrides, budget) — one parser and one semantics for analyze,
  /// lint, batch, and serve defaults.
  api::RequestOptions Request;
  // Interpreter-only knobs.
  std::string Scheduler = "rr";
  int Np = 8;
  std::uint64_t Seed = 1;
  bool Validate = false;
  bool Stats = false;
  // Lint presentation.
  std::string Format = "text";
  std::string MinSeverity = "note";
  bool Werror = false;
  std::set<std::string> Disabled;
  // Batch driver.
  unsigned Jobs = 1;
  std::uint64_t TimeoutMs = 0;
  std::string BatchMode = "fork";
  std::string ReportPath;
  // Serve daemon.
  std::size_t CacheSize = 256;
  std::string SocketPath;
  std::string StoreDir;
  std::uint64_t StoreMaxMb = 256;
  unsigned MaxInflight = 8;
  unsigned QueueDepth = 16;
  std::string MemoDir;
  std::uint64_t MemoFlushEvery = 16;
  std::string FaultSpec;
  // Client.
  std::string ClientType;
  bool SendSource = false;
  std::string Tenant;
  bool Verbose = false;
  std::uint64_t Retries = 5;
  std::uint64_t RetryBaseMs = 25;
  std::uint64_t RetryCapMs = 2000;
  // Router.
  std::vector<std::string> Backends;
  std::uint64_t Replicas = 64;
  std::uint64_t TenantInflight = 4;
  std::uint64_t TenantQueue = 8;
  std::uint64_t HealthIntervalMs = 200;
  /// True once any shared analysis flag was given — `csdf client` only
  /// sends an "options" object then, so plain requests inherit the
  /// daemon's defaults.
  bool HasRequestFlags = false;
};

void usage() {
  std::fprintf(stderr,
               "usage: csdf <check|cfg|run|analyze|topo|baseline|lint|batch> "
               "<file.mpl|dir> [options]\n"
               "       csdf serve [options]\n"
               "       csdf client <analyze|lint|stats|shutdown> [file.mpl] "
               "--socket PATH [options]\n"
               "       csdf router --socket PATH --backend PATH... "
               "[options]\n"
               "       csdf lsp [options]\n"
               "analysis options (analyze, lint, batch, serve):\n"
               "  --client linear|cartesian|sectionx  --fixed-np N  "
               "--param NAME=V\n"
               "  --threads N      parallel worklist drain (identical "
               "results at any N)\n"
               "  --max-states N   engine state budget\n"
               "  --deadline-ms N  --max-memory-mb N  --prover-steps N\n"
               "  --no-match-nondet  do not report wildcard receives with "
               "multiple senders\n"
               "interpreter options:\n"
               "  --np N  --scheduler rr|lifo|random  --seed N\n"
               "  --validate  --stats\n"
               "analyze options:\n"
               "  --format text|json   json = one batch-report verdict "
               "object\n"
               "lint options:\n"
               "  --format text|json|sarif  --Werror\n"
               "  --min-severity note|warning|error  --disable <pass>\n"
               "  (csdf lint --list-passes prints every pass name)\n"
               "batch options:\n"
               "  --jobs N  --timeout-ms N  --report out.json\n"
               "  --mode fork|threads   fork = crash-isolated children; "
               "threads = in-process,\n"
               "                        shared closure memo (default "
               "fork)\n"
               "serve options:\n"
               "  --cache-size N   result-cache entries (default 256, 0 "
               "disables)\n"
               "  --socket PATH    unix-socket transport instead of stdio\n"
               "  --store-dir DIR  durable on-disk result store (crash-safe,"
               " checksummed)\n"
               "  --store-max-mb N store byte budget in MB (default 256)\n"
               "  --max-inflight N --queue-depth N  socket admission gate; "
               "connections\n"
               "                   beyond the two are shed with a "
               "structured `overloaded` error\n"
               "  --memo-dir DIR   snapshot the warm closure memo; a "
               "restarted daemon adopts it\n"
               "  --memo-flush-every N  snapshot period in analyzed "
               "requests (default 16)\n"
               "  --fault SPEC     arm fault-injection sites (CSDF_FAULT "
               "env too; `list` prints them)\n"
               "client options (one-shot request to a serve daemon or "
               "router):\n"
               "  --socket PATH    the daemon's socket (required)\n"
               "  --send-source    embed the file bytes as \"source\"\n"
               "  --tenant NAME    tenant name for router admission "
               "quotas\n"
               "  --verbose        narrate attempts and the answering "
               "shard on stderr\n"
               "  --retries N  --retry-base-ms N  --retry-cap-ms N\n"
               "router options (fleet front end over serve daemons):\n"
               "  --socket PATH    the router's listening socket "
               "(required)\n"
               "  --backend PATH   a shard's socket (repeat per shard)\n"
               "  --replicas N     ring virtual nodes per shard (default "
               "64)\n"
               "  --tenant-inflight N --tenant-queue N  per-tenant "
               "admission quotas\n"
               "  --health-interval-ms N  probe period (default 200, 0 "
               "disables)\n"
               "lsp: a Language Server Protocol server on stdio (lint "
               "diagnostics\n"
               "  on every change, incremental re-analysis); takes the "
               "analysis options\n"
               "exit codes: 0 complete, 1 degraded/findings, 2 usage/IO, "
               "3 internal error\n");
}

/// One-line usage diagnostic on stderr; every parseArgs failure goes
/// through here exactly once so the exit-2 contract stays uniform.
bool usageError(const std::string &Msg) {
  std::fprintf(stderr, "csdf: error: %s (run csdf without arguments for "
                       "usage)\n",
               Msg.c_str());
  return false;
}

bool parseArgs(int Argc, char **Argv, CliOptions &Opts) {
  if (Argc < 2)
    return usageError("expected a command and an input path");
  Opts.Command = Argv[1];
  int First = 3;
  if (Opts.Command == "serve" || Opts.Command == "lsp" ||
      Opts.Command == "router") {
    // The daemons take no input path; their flags set per-request
    // defaults.
    First = 2;
  } else if (Opts.Command == "client") {
    // client <type> [file] --socket PATH [options]
    if (Argc < 3)
      return usageError(
          "client requires a request type (analyze, lint, stats, shutdown)");
    Opts.ClientType = Argv[2];
    if (Opts.ClientType != "analyze" && Opts.ClientType != "lint" &&
        Opts.ClientType != "stats" && Opts.ClientType != "shutdown")
      return usageError("unknown client request type '" + Opts.ClientType +
                        "'");
    First = 3;
    if (First < Argc && Argv[First][0] != '-') {
      Opts.File = Argv[First];
      ++First;
    }
  } else {
    if (Argc < 3)
      return usageError("expected a command and an input path");
    Opts.File = Argv[2];
  }
  for (int I = First; I < Argc; ++I) {
    // The shared analysis request flags are one vocabulary for every
    // front end; try them first.
    std::string SharedError;
    switch (api::parseSharedOption(Argc, Argv, I, Opts.Request,
                                   SharedError)) {
    case api::ArgStatus::Consumed:
      Opts.HasRequestFlags = true;
      continue;
    case api::ArgStatus::Error:
      return usageError(SharedError);
    case api::ArgStatus::NotMine:
      break;
    }
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    // Flags taking an unsigned integer value all parse the same way.
    auto NextUint = [&](std::uint64_t &Out) {
      const char *V = Next();
      if (!V)
        return usageError("missing value for " + Arg);
      char *End = nullptr;
      Out = std::strtoull(V, &End, 10);
      if (End == V || *End != '\0')
        return usageError("invalid number '" + std::string(V) + "' for " +
                          Arg);
      return true;
    };
    if (Arg == "--np") {
      std::uint64_t V = 0;
      if (!NextUint(V))
        return false;
      Opts.Np = static_cast<int>(V);
    } else if (Arg == "--seed") {
      if (!NextUint(Opts.Seed))
        return false;
    } else if (Arg == "--scheduler") {
      const char *V = Next();
      if (!V)
        return usageError("missing value for --scheduler");
      Opts.Scheduler = V;
      if (Opts.Scheduler != "rr" && Opts.Scheduler != "lifo" &&
          Opts.Scheduler != "random")
        return usageError("unknown scheduler '" + Opts.Scheduler + "'");
    } else if (Arg == "--validate") {
      Opts.Validate = true;
    } else if (Arg == "--stats") {
      Opts.Stats = true;
    } else if (Arg == "--jobs") {
      std::uint64_t V = 0;
      if (!NextUint(V))
        return false;
      Opts.Jobs = std::max<std::uint64_t>(1, V);
    } else if (Arg == "--timeout-ms") {
      if (!NextUint(Opts.TimeoutMs))
        return false;
    } else if (Arg == "--mode") {
      const char *V = Next();
      if (!V)
        return usageError("missing value for --mode");
      Opts.BatchMode = V;
      if (Opts.BatchMode != "fork" && Opts.BatchMode != "threads")
        return usageError("unknown batch mode '" + Opts.BatchMode + "'");
    } else if (Arg == "--report") {
      const char *V = Next();
      if (!V)
        return usageError("missing value for --report");
      Opts.ReportPath = V;
    } else if (Arg == "--format") {
      const char *V = Next();
      if (!V)
        return usageError("missing value for --format");
      Opts.Format = V;
      if (Opts.Format != "text" && Opts.Format != "json" &&
          Opts.Format != "sarif")
        return usageError("unknown format '" + Opts.Format + "'");
    } else if (Arg == "--Werror") {
      Opts.Werror = true;
    } else if (Arg == "--min-severity") {
      const char *V = Next();
      if (!V)
        return usageError("missing value for --min-severity");
      Opts.MinSeverity = V;
      if (Opts.MinSeverity != "note" && Opts.MinSeverity != "warning" &&
          Opts.MinSeverity != "error")
        return usageError("unknown severity '" + Opts.MinSeverity + "'");
    } else if (Arg == "--disable") {
      const char *V = Next();
      if (!V)
        return usageError("missing value for --disable");
      if (!isKnownLintPass(V))
        return usageError("unknown lint pass '" + std::string(V) +
                          "' (try --list-passes)");
      Opts.Disabled.insert(V);
    } else if (Arg == "--cache-size") {
      std::uint64_t V = 0;
      if (!NextUint(V))
        return false;
      Opts.CacheSize = static_cast<std::size_t>(V);
    } else if (Arg == "--socket") {
      const char *V = Next();
      if (!V)
        return usageError("missing value for --socket");
      Opts.SocketPath = V;
    } else if (Arg == "--store-dir") {
      const char *V = Next();
      if (!V)
        return usageError("missing value for --store-dir");
      Opts.StoreDir = V;
    } else if (Arg == "--store-max-mb") {
      if (!NextUint(Opts.StoreMaxMb))
        return false;
    } else if (Arg == "--max-inflight") {
      std::uint64_t V = 0;
      if (!NextUint(V))
        return false;
      Opts.MaxInflight = static_cast<unsigned>(std::max<std::uint64_t>(1, V));
    } else if (Arg == "--queue-depth") {
      std::uint64_t V = 0;
      if (!NextUint(V))
        return false;
      Opts.QueueDepth = static_cast<unsigned>(V);
    } else if (Arg == "--memo-dir") {
      const char *V = Next();
      if (!V)
        return usageError("missing value for --memo-dir");
      Opts.MemoDir = V;
    } else if (Arg == "--memo-flush-every") {
      if (!NextUint(Opts.MemoFlushEvery))
        return false;
    } else if (Arg == "--fault") {
      const char *V = Next();
      if (!V)
        return usageError("missing value for --fault");
      Opts.FaultSpec = V;
    } else if (Arg == "--send-source") {
      Opts.SendSource = true;
    } else if (Arg == "--tenant") {
      const char *V = Next();
      if (!V)
        return usageError("missing value for --tenant");
      Opts.Tenant = V;
    } else if (Arg == "--verbose") {
      Opts.Verbose = true;
    } else if (Arg == "--backend") {
      const char *V = Next();
      if (!V)
        return usageError("missing value for --backend");
      Opts.Backends.push_back(V);
    } else if (Arg == "--replicas") {
      if (!NextUint(Opts.Replicas))
        return false;
      if (Opts.Replicas == 0)
        return usageError("--replicas requires a positive integer");
    } else if (Arg == "--tenant-inflight") {
      if (!NextUint(Opts.TenantInflight))
        return false;
      if (Opts.TenantInflight == 0)
        return usageError("--tenant-inflight requires a positive integer");
    } else if (Arg == "--tenant-queue") {
      if (!NextUint(Opts.TenantQueue))
        return false;
    } else if (Arg == "--health-interval-ms") {
      if (!NextUint(Opts.HealthIntervalMs))
        return false;
    } else if (Arg == "--retries") {
      if (!NextUint(Opts.Retries))
        return false;
    } else if (Arg == "--retry-base-ms") {
      if (!NextUint(Opts.RetryBaseMs))
        return false;
      if (Opts.RetryBaseMs == 0)
        return usageError("--retry-base-ms requires a positive integer");
    } else if (Arg == "--retry-cap-ms") {
      if (!NextUint(Opts.RetryCapMs))
        return false;
      if (Opts.RetryCapMs == 0)
        return usageError("--retry-cap-ms requires a positive integer");
    } else {
      return usageError("unknown option '" + Arg + "'");
    }
  }
  if (Opts.Command == "analyze" && Opts.Format == "sarif")
    return usageError("analyze supports --format text|json");
  return true;
}

RunResult execute(const Cfg &Graph, const CliOptions &Cli) {
  RunOptions Opts;
  Opts.NumProcs = Cli.Np;
  Opts.Params = Cli.Request.Params;
  if (Cli.Scheduler == "lifo") {
    LifoScheduler S;
    return runProgram(Graph, Opts, S);
  }
  if (Cli.Scheduler == "random") {
    RandomScheduler S(Cli.Seed);
    return runProgram(Graph, Opts, S);
  }
  RoundRobinScheduler S;
  return runProgram(Graph, Opts, S);
}

int cmdRun(const Cfg &Graph, const CliOptions &Cli) {
  RunResult R = execute(Graph, Cli);
  std::printf("status: %s\n", runStatusName(R.Status));
  if (!R.Error.empty())
    std::printf("error: %s\n", R.Error.c_str());
  for (size_t Rank = 0; Rank < R.Prints.size(); ++Rank)
    for (std::int64_t V : R.Prints[Rank])
      std::printf("rank %zu prints %lld\n", Rank,
                  static_cast<long long>(V));
  std::printf("%zu messages delivered\n", R.Trace.size());
  for (const LeakedMessage &L : R.Leaks)
    std::printf("LEAK: %d -> %d value %lld (sent at %s)\n", L.Sender,
                L.Receiver, static_cast<long long>(L.Value),
                Graph.nodeLabel(L.SendNode).c_str());
  for (const LeakedRequest &L : R.RequestLeaks)
    std::printf("REQUEST LEAK: rank %d never waited on '%s' (posted at "
                "%s)\n",
                L.Rank, L.Req.c_str(), Graph.nodeLabel(L.PostNode).c_str());
  for (const NondetWitness &W : R.NondetWitnesses) {
    std::string Senders;
    for (int S : W.EligibleSenders)
      Senders += (Senders.empty() ? "" : ", ") + std::to_string(S);
    std::printf("NONDET: rank %d wildcard receive at %s had %zu eligible "
                "senders {%s}\n",
                W.Receiver, Graph.nodeLabel(W.RecvNode).c_str(),
                W.EligibleSenders.size(), Senders.c_str());
  }
  for (int Rank : R.BlockedRanks)
    std::printf("BLOCKED: rank %d never finished\n", Rank);
  return R.finished() ? 0 : 1;
}

/// Dumps the global StatsRegistry to stderr (keeps stdout clean for the
/// json/sarif formats and the golden corpus).
void printStats() {
  const StatsRegistry &R = StatsRegistry::global();
  std::fprintf(stderr, "--- stats ---\n");
  for (const auto &[Name, Value] : R.counters())
    std::fprintf(stderr, "%-28s %lld\n", Name.c_str(),
                 static_cast<long long>(Value));
  for (const auto &[Name, Seconds] : R.timers())
    std::fprintf(stderr, "%-28s %.6f s\n", Name.c_str(), Seconds);
}

int cmdAnalyze(const std::string &Source, const CliOptions &Cli) {
  if (Cli.Stats)
    StatsRegistry::global().clear();
  // A cold analyzer: one-shot runs get fresh per-run state, exactly the
  // classic pipeline (the serve daemon is the warm holder).
  api::Analyzer An;
  api::AnalyzeRequest Req;
  Req.Path = Cli.File;
  Req.Source = Source;
  Req.Options = Cli.Request;
  api::AnalyzeResponse Resp = An.analyze(Req);
  SessionResult &S = Resp.Session;

  if (Cli.Format == "json") {
    // The same verdict object a batch report entry (and a serve response)
    // carries for this file.
    std::printf("%s\n", api::verdictJson(Cli.File, Resp).c_str());
    if (Cli.Stats)
      printStats();
    return S.ExitCode;
  }

  if (S.FrontEndErrors) {
    std::fputs(S.Error.c_str(), stderr);
    return S.ExitCode;
  }

  auto PrintBudgetLine = [&] {
    if (Cli.Request.DeadlineMs || Cli.Request.MaxMemoryMb ||
        Cli.Request.ProverSteps)
      std::printf("budget: %llu ms elapsed, peak DBM bytes %llu, prover "
                  "steps %llu\n",
                  static_cast<unsigned long long>(S.ElapsedMs),
                  static_cast<unsigned long long>(S.PeakDbmBytes),
                  static_cast<unsigned long long>(S.ProverStepsUsed));
  };

  // S.Outcome is the session-level verdict: it matches the engine's on the
  // happy path and is the only trustworthy one when a stage before or
  // after the engine failed (budget trip in parse/sema/CFG build, hook,
  // client pass) — the report's copy is default-empty on those paths.
  if (!S.Graph) {
    // The pipeline stopped before a CFG existed: no stats or findings to
    // show, just the verdict and the accounting snapshot.
    if (S.Outcome.internalError())
      std::fprintf(stderr, "csdf: %s\n", S.Error.c_str());
    std::printf("verdict: %s\n", S.Outcome.str().c_str());
    if (!S.Outcome.complete() && !S.Outcome.Reason.empty())
      std::printf("  reason: %s\n", S.Outcome.Reason.c_str());
    PrintBudgetLine();
    if (Cli.Stats)
      printStats();
    return S.ExitCode;
  }

  const Cfg &Graph = *S.Graph;
  ClientReport &Report = S.Report;
  AnalysisResult &R = Report.Analysis;
  std::printf("verdict: %s\n", S.Outcome.str().c_str());
  if (!S.Outcome.complete() && !S.Outcome.Reason.empty())
    std::printf("  reason: %s\n", S.Outcome.Reason.c_str());
  if (!S.Outcome.Configuration.empty())
    std::printf("  at configuration: %s\n", S.Outcome.Configuration.c_str());
  std::printf("states explored: %u, configurations: %u, max process sets: "
              "%u\n",
              R.StatesExplored, R.ConfigsVisited, R.MaxSetsSeen);
  PrintBudgetLine();
  if (S.Outcome.internalError()) {
    // Partial facts after an invariant violation are untrustworthy; print
    // nothing beyond the verdict and the accounting snapshot.
    if (Cli.Stats)
      printStats();
    return S.ExitCode;
  }

  std::printf("\ntopology (%zu matches):\n", R.Matches.size());
  for (const MatchRecord &M : R.Matches)
    std::printf("  %-30s -> %-30s  %s -> %s\n",
                Graph.nodeLabel(M.SendNode).c_str(),
                Graph.nodeLabel(M.RecvNode).c_str(), M.SenderRange.c_str(),
                M.ReceiverRange.c_str());
  for (const ClassifiedPattern &P : Report.Patterns)
    std::printf("  pattern: %-14s %s\n", patternKindName(P.Kind),
                P.Description.c_str());
  for (const CollectiveSuggestion &S : Report.Suggestions)
    std::printf("  optimize: use %-28s (%s)\n", S.Collective.c_str(),
                S.Description.c_str());
  if (!Report.ShareableConstants.empty()) {
    std::printf("\nshareable read-only data (identical on every "
                "process):\n");
    for (const auto &[Var, Value] : Report.ShareableConstants)
      std::printf("  %s == %lld\n", Var.c_str(),
                  static_cast<long long>(Value));
  }

  if (!R.PrintFacts.empty()) {
    std::printf("\nprint facts:\n");
    for (const PrintFact &F : R.PrintFacts) {
      if (F.Value)
        std::printf("  %s prints constant %lld at %s\n", F.SetRange.c_str(),
                    static_cast<long long>(*F.Value),
                    Graph.nodeLabel(F.Node).c_str());
      else
        std::printf("  %s prints unknown value at %s\n", F.SetRange.c_str(),
                    Graph.nodeLabel(F.Node).c_str());
    }
  }
  if (!R.Bugs.empty()) {
    std::printf("\nbug candidates:\n");
    for (const AnalysisBug &B : R.Bugs) {
      if (B.Loc.isValid())
        std::printf("  [%s] %s: %s\n", analysisBugKindName(B.TheKind),
                    B.Loc.str().c_str(), B.Detail.c_str());
      else
        std::printf("  [%s] %s\n", analysisBugKindName(B.TheKind),
                    B.Detail.c_str());
    }
  }

  if (Cli.Stats)
    printStats();
  if (Cli.Validate) {
    RunResult Run = execute(Graph, Cli);
    ValidationReport Validation = validateTopology(R, Run);
    std::printf("\nvalidation (np=%d): %s\n", Cli.Np,
                Validation.str(Graph).c_str());
    return R.Converged && Validation.Exact ? 0 : 1;
  }
  return S.ExitCode;
}

DiagSeverity severityFromName(const std::string &Name) {
  if (Name == "error")
    return DiagSeverity::Error;
  if (Name == "warning")
    return DiagSeverity::Warning;
  return DiagSeverity::Note;
}

int cmdLint(const std::string &Source, const CliOptions &Cli) {
  if (Cli.Stats)
    StatsRegistry::global().clear();
  api::Analyzer An;
  api::LintRequest Req;
  Req.Path = Cli.File;
  Req.Source = Source;
  Req.Options = Cli.Request;
  Req.Disabled = Cli.Disabled;
  Req.Werror = Cli.Werror;
  Req.MinSeverity = severityFromName(Cli.MinSeverity);
  api::LintResponse R = An.lint(Req);
  if (Cli.Stats)
    printStats();

  std::string Out;
  if (Cli.Format == "json")
    Out = renderDiagsJson(R.Diagnostics, Cli.File);
  else if (Cli.Format == "sarif")
    Out = renderDiagsSarif(R.Diagnostics, Cli.File, lintRuleDocs());
  else
    Out = renderDiagsText(R.Diagnostics, Cli.File, Source);
  std::fputs(Out.c_str(), stdout);

  if (Cli.Format == "text" && !R.Diagnostics.empty()) {
    unsigned Errors = 0, Warnings = 0, Notes = 0;
    for (const Diagnostic &D : R.Diagnostics) {
      if (D.Sev == DiagSeverity::Error)
        ++Errors;
      else if (D.Sev == DiagSeverity::Warning)
        ++Warnings;
      else
        ++Notes;
    }
    std::printf("%zu finding(s): %u error(s), %u warning(s), %u note(s)\n",
                R.Diagnostics.size(), Errors, Warnings, Notes);
  }
  return R.ExitCode;
}

int cmdBatch(const CliOptions &Cli) {
  std::vector<std::string> Files;
  std::string Error;
  if (!collectBatchInputs(Cli.File, Files, Error)) {
    std::fprintf(stderr, "csdf: %s\n", Error.c_str());
    return SessionExitUsage;
  }

  api::BatchRequest Req;
  Req.Files = std::move(Files);
  Req.Options = Cli.Request;
  // Batch corpora are allowed to inject failures: the whole point of the
  // driver is surviving them.
  Req.Options.TestHooks = true;
  Req.Jobs = Cli.Jobs;
  Req.TimeoutMs = Cli.TimeoutMs;
  Req.Mode =
      Cli.BatchMode == "threads" ? BatchMode::Threads : BatchMode::Fork;

  api::Analyzer An;
  BatchReport Report = An.runBatch(Req);
  for (const BatchEntry &E : Report.Entries)
    std::printf("%-40s %-26s %6llu ms  %s\n", E.File.c_str(),
                E.Verdict.c_str(), static_cast<unsigned long long>(E.WallMs),
                E.Detail.c_str());
  std::printf("batch: %zu file(s): %u complete, %u findings, %u usage, "
              "%u internal, %u crash(es), %u timeout(s)\n",
              Report.Entries.size(), Report.Complete, Report.Findings,
              Report.UsageErrors, Report.InternalErrors, Report.Crashes,
              Report.Timeouts);

  if (!Cli.ReportPath.empty()) {
    std::ofstream Out(Cli.ReportPath);
    if (!Out) {
      std::fprintf(stderr, "csdf: error: cannot write report '%s'\n",
                   Cli.ReportPath.c_str());
      return SessionExitUsage;
    }
    Out << Report.json();
  }
  return Report.allComplete() ? SessionExitComplete : SessionExitFindings;
}

int cmdServe(const CliOptions &Cli) {
  if (Cli.FaultSpec == "list") {
    for (const FaultSiteInfo &S : FaultInjector::knownSites())
      std::printf("%-22s %s\n", S.Name, S.Description);
    return 0;
  }
  // Env first so --fault can override a stale environment.
  std::string FaultError;
  if (!FaultInjector::global().configureFromEnv(FaultError) ||
      (!Cli.FaultSpec.empty() &&
       !FaultInjector::global().configure(Cli.FaultSpec, FaultError))) {
    std::fprintf(stderr, "csdf: error: %s\n", FaultError.c_str());
    return 2;
  }

  ServeOptions Opts;
  Opts.Defaults = Cli.Request;
  Opts.CacheCapacity = Cli.CacheSize;
  Opts.SocketPath = Cli.SocketPath;
  Opts.StoreDir = Cli.StoreDir;
  Opts.StoreMaxBytes = Cli.StoreMaxMb << 20;
  Opts.MaxInflight = Cli.MaxInflight;
  Opts.QueueDepth = Cli.QueueDepth;
  Opts.MemoDir = Cli.MemoDir;
  Opts.MemoFlushEvery = static_cast<unsigned>(Cli.MemoFlushEvery);
  return runServe(Opts);
}

int cmdRouter(const CliOptions &Cli) {
  RouterOptions Opts;
  Opts.Backends = Cli.Backends;
  Opts.SocketPath = Cli.SocketPath;
  Opts.Replicas = static_cast<unsigned>(Cli.Replicas);
  Opts.TenantMaxInflight = static_cast<unsigned>(Cli.TenantInflight);
  Opts.TenantQueueDepth = static_cast<unsigned>(Cli.TenantQueue);
  Opts.HealthIntervalMs = static_cast<unsigned>(Cli.HealthIntervalMs);
  return runRouter(Opts);
}

int cmdClient(const CliOptions &Cli) {
  ClientOptions Opts;
  Opts.SocketPath = Cli.SocketPath;
  Opts.Type = Cli.ClientType;
  Opts.Path = Cli.File;
  Opts.SendSource = Cli.SendSource;
  Opts.Options = Cli.Request;
  Opts.HasOptions = Cli.HasRequestFlags;
  Opts.Tenant = Cli.Tenant;
  Opts.Verbose = Cli.Verbose;
  Opts.Disabled = Cli.Disabled;
  Opts.Werror = Cli.Werror;
  if (Cli.MinSeverity != "note") // the daemon's default; omit when unset
    Opts.MinSeverity = Cli.MinSeverity;
  Opts.Retries = static_cast<unsigned>(Cli.Retries);
  Opts.RetryBaseMs = static_cast<unsigned>(Cli.RetryBaseMs);
  Opts.RetryCapMs = static_cast<unsigned>(Cli.RetryCapMs);
  return runClient(Opts);
}

int cmdLsp(const CliOptions &Cli) {
  LspOptions Opts;
  Opts.Defaults = Cli.Request;
  return runLsp(Opts);
}

int cmdListPasses() {
  for (const LintPassInfo &P : lintPassRegistry())
    std::printf("%-18s %s\n", P.Name.c_str(), P.Description.c_str());
  return 0;
}

int cmdBaseline(const Cfg &Graph) {
  MpiCfgResult R = buildMpiCfg(Graph);
  std::printf("MPI-CFG: %u all-pairs edges, %u pruned by tag, %u pruned by "
              "shift, %zu kept:\n",
              R.InitialEdges, R.PrunedByTag, R.PrunedByShift,
              R.Edges.size());
  for (const auto &[S, Rv] : R.Edges)
    std::printf("  %-30s -> %s\n", Graph.nodeLabel(S).c_str(),
                Graph.nodeLabel(Rv).c_str());
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Cli;
  if (!parseArgs(Argc, Argv, Cli)) {
    usage();
    return 2;
  }

  if (Cli.Command == "lint" && Cli.File == "--list-passes")
    return cmdListPasses();

  // The daemons and the batch driver resolve their own inputs.
  if (Cli.Command == "serve")
    return cmdServe(Cli);
  if (Cli.Command == "client")
    return cmdClient(Cli);
  if (Cli.Command == "router")
    return cmdRouter(Cli);
  if (Cli.Command == "lsp")
    return cmdLsp(Cli);
  if (Cli.Command == "batch")
    return cmdBatch(Cli);

  std::string Source, ReadError;
  if (!readSessionFile(Cli.File, Source, ReadError)) {
    std::fprintf(stderr, "%s\n", ReadError.c_str());
    return 2;
  }

  // Lint owns its whole pipeline (parse errors become diagnostics in the
  // selected output format rather than raw stderr lines).
  if (Cli.Command == "lint")
    return cmdLint(Source, Cli);
  // Analyze runs through the fail-safe session layer (budget + recovery).
  if (Cli.Command == "analyze")
    return cmdAnalyze(Source, Cli);

  ParseResult Parsed = parseProgram(Source);
  if (!Parsed.succeeded()) {
    for (const ParseDiagnostic &D : Parsed.Diagnostics)
      std::fprintf(stderr, "%s: %s\n", Cli.File.c_str(), D.str().c_str());
    return 1;
  }
  SemaResult Sema = checkProgram(Parsed.Prog);
  for (const SemaDiagnostic &D : Sema.Diagnostics)
    std::fprintf(stderr, "%s: %s\n", Cli.File.c_str(), D.str().c_str());
  if (Sema.hasErrors())
    return 1;

  if (Cli.Command == "check") {
    std::printf("%s: ok\n", Cli.File.c_str());
    return 0;
  }

  Cfg Graph = buildCfg(Parsed.Prog);
  if (Cli.Command == "cfg") {
    std::fputs(cfgToDot(Graph, "cfg").c_str(), stdout);
    return 0;
  }
  if (Cli.Command == "run")
    return cmdRun(Graph, Cli);
  if (Cli.Command == "baseline")
    return cmdBaseline(Graph);
  if (Cli.Command == "topo") {
    AnalysisResult R = analyzeProgram(Graph, Cli.Request.analysis());
    std::fputs(topologyToDot(Graph, R, "topology").c_str(), stdout);
    return R.Converged ? 0 : 1;
  }
  usage();
  return 2;
}
