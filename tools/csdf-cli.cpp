//===- tools/csdf-cli.cpp - Command-line driver ---------------------------------===//
//
// Part of the csdf project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The command-line front door to the library:
//
//   csdf check    <file.mpl>                  parse + semantic checks
//   csdf cfg      <file.mpl>                  control-flow graph as DOT
//   csdf run      <file.mpl> [--np N] ...     execute on the interpreter
//   csdf analyze  <file.mpl> [options]        pCFG analysis: topology,
//                                             constants, bug candidates
//   csdf topo     <file.mpl> [options]        matched topology as DOT
//   csdf lint     <file.mpl> [options]        static-analysis pass suite
//                                             with structured diagnostics
//
// Common options:
//   --client linear|cartesian   client analysis (default cartesian)
//   --np N                      interpreter process count (default 8)
//   --fixed-np N                pin np for the analysis
//   --param NAME=V              grid parameter (both run and analysis)
//   --scheduler rr|lifo|random  interpreter schedule (default rr)
//   --seed N                    seed for the random scheduler
//   --validate                  after analyze: compare against a run
//   --stats                     after analyze/lint: dump StatsRegistry
//                               counters and timers to stderr
//
// Lint options:
//   --format text|json|sarif    output format (default text)
//   --Werror                    promote warnings to errors
//   --min-severity note|warning|error   drop findings below this level
//   --disable <pass>            skip a pass (repeatable); `csdf lint
//                               --list-passes` prints all pass names
//
// Lint exit codes: 0 clean, 1 findings, 2 usage/IO error.
//
//===----------------------------------------------------------------------===//

#include "analysis/Clients.h"
#include "analysis/Lint.h"
#include "baseline/MpiCfg.h"
#include "diag/DiagRenderer.h"
#include "cfg/CfgBuilder.h"
#include "cfg/CfgDot.h"
#include "interp/Interpreter.h"
#include "lang/Parser.h"
#include "lang/Sema.h"
#include "pcfg/Engine.h"
#include "support/Stats.h"
#include "topology/CommTopology.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

using namespace csdf;

namespace {

struct CliOptions {
  std::string Command;
  std::string File;
  std::string Client = "cartesian";
  std::string Scheduler = "rr";
  std::string Format = "text";
  std::string MinSeverity = "note";
  int Np = 8;
  std::int64_t FixedNp = 0;
  std::uint64_t Seed = 1;
  bool Validate = false;
  bool Werror = false;
  bool Stats = false;
  std::set<std::string> Disabled;
  std::map<std::string, std::int64_t> Params;
};

void usage() {
  std::fprintf(stderr,
               "usage: csdf <check|cfg|run|analyze|topo|baseline|lint> "
               "<file.mpl> [options]\n"
               "  --client linear|cartesian|sectionx  --np N  --fixed-np N\n"
               "  --param NAME=V  --scheduler rr|lifo|random  --seed N\n"
               "  --validate  --stats\n"
               "lint options:\n"
               "  --format text|json|sarif  --Werror\n"
               "  --min-severity note|warning|error  --disable <pass>\n"
               "  (csdf lint --list-passes prints every pass name)\n");
}

bool parseArgs(int Argc, char **Argv, CliOptions &Opts) {
  if (Argc < 3)
    return false;
  Opts.Command = Argv[1];
  Opts.File = Argv[2];
  for (int I = 3; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    if (Arg == "--client") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.Client = V;
    } else if (Arg == "--np") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.Np = std::atoi(V);
    } else if (Arg == "--fixed-np") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.FixedNp = std::atoll(V);
    } else if (Arg == "--seed") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.Seed = std::strtoull(V, nullptr, 10);
    } else if (Arg == "--scheduler") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.Scheduler = V;
    } else if (Arg == "--param") {
      const char *V = Next();
      if (!V)
        return false;
      std::string S = V;
      size_t Eq = S.find('=');
      if (Eq == std::string::npos)
        return false;
      Opts.Params[S.substr(0, Eq)] = std::atoll(S.c_str() + Eq + 1);
    } else if (Arg == "--validate") {
      Opts.Validate = true;
    } else if (Arg == "--stats") {
      Opts.Stats = true;
    } else if (Arg == "--format") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.Format = V;
      if (Opts.Format != "text" && Opts.Format != "json" &&
          Opts.Format != "sarif") {
        std::fprintf(stderr, "unknown format '%s'\n", V);
        return false;
      }
    } else if (Arg == "--Werror") {
      Opts.Werror = true;
    } else if (Arg == "--min-severity") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.MinSeverity = V;
      if (Opts.MinSeverity != "note" && Opts.MinSeverity != "warning" &&
          Opts.MinSeverity != "error") {
        std::fprintf(stderr, "unknown severity '%s'\n", V);
        return false;
      }
    } else if (Arg == "--disable") {
      const char *V = Next();
      if (!V)
        return false;
      if (!isKnownLintPass(V)) {
        std::fprintf(stderr, "unknown lint pass '%s' (try --list-passes)\n",
                     V);
        return false;
      }
      Opts.Disabled.insert(V);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", Arg.c_str());
      return false;
    }
  }
  return true;
}

std::optional<std::string> readFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return std::nullopt;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

AnalysisOptions analysisOptions(const CliOptions &Cli) {
  AnalysisOptions Opts = AnalysisOptions::cartesian();
  if (Cli.Client == "linear")
    Opts = AnalysisOptions::simpleSymbolic();
  else if (Cli.Client == "sectionx")
    Opts = AnalysisOptions::sectionX();
  Opts.FixedNp = Cli.FixedNp;
  Opts.Params = Cli.Params;
  return Opts;
}

RunResult execute(const Cfg &Graph, const CliOptions &Cli) {
  RunOptions Opts;
  Opts.NumProcs = Cli.Np;
  Opts.Params = Cli.Params;
  if (Cli.Scheduler == "lifo") {
    LifoScheduler S;
    return runProgram(Graph, Opts, S);
  }
  if (Cli.Scheduler == "random") {
    RandomScheduler S(Cli.Seed);
    return runProgram(Graph, Opts, S);
  }
  RoundRobinScheduler S;
  return runProgram(Graph, Opts, S);
}

int cmdRun(const Cfg &Graph, const CliOptions &Cli) {
  RunResult R = execute(Graph, Cli);
  std::printf("status: %s\n", runStatusName(R.Status));
  if (!R.Error.empty())
    std::printf("error: %s\n", R.Error.c_str());
  for (size_t Rank = 0; Rank < R.Prints.size(); ++Rank)
    for (std::int64_t V : R.Prints[Rank])
      std::printf("rank %zu prints %lld\n", Rank,
                  static_cast<long long>(V));
  std::printf("%zu messages delivered\n", R.Trace.size());
  for (const LeakedMessage &L : R.Leaks)
    std::printf("LEAK: %d -> %d value %lld (sent at %s)\n", L.Sender,
                L.Receiver, static_cast<long long>(L.Value),
                Graph.nodeLabel(L.SendNode).c_str());
  for (int Rank : R.BlockedRanks)
    std::printf("BLOCKED: rank %d never finished\n", Rank);
  return R.finished() ? 0 : 1;
}

/// Dumps the global StatsRegistry to stderr (keeps stdout clean for the
/// json/sarif formats and the golden corpus).
void printStats() {
  const StatsRegistry &R = StatsRegistry::global();
  std::fprintf(stderr, "--- stats ---\n");
  for (const auto &[Name, Value] : R.counters())
    std::fprintf(stderr, "%-28s %lld\n", Name.c_str(),
                 static_cast<long long>(Value));
  for (const auto &[Name, Seconds] : R.timers())
    std::fprintf(stderr, "%-28s %.6f s\n", Name.c_str(), Seconds);
}

int cmdAnalyze(const Cfg &Graph, const CliOptions &Cli) {
  if (Cli.Stats)
    StatsRegistry::global().clear();
  ClientReport Report = runClients(Graph, analysisOptions(Cli));
  AnalysisResult &R = Report.Analysis;
  std::printf("verdict: %s\n",
              R.Converged ? "converged" : ("TOP: " + R.TopReason).c_str());
  std::printf("states explored: %u, configurations: %u, max process sets: "
              "%u\n",
              R.StatesExplored, R.ConfigsVisited, R.MaxSetsSeen);

  std::printf("\ntopology (%zu matches):\n", R.Matches.size());
  for (const MatchRecord &M : R.Matches)
    std::printf("  %-30s -> %-30s  %s -> %s\n",
                Graph.nodeLabel(M.SendNode).c_str(),
                Graph.nodeLabel(M.RecvNode).c_str(), M.SenderRange.c_str(),
                M.ReceiverRange.c_str());
  for (const ClassifiedPattern &P : Report.Patterns)
    std::printf("  pattern: %-14s %s\n", patternKindName(P.Kind),
                P.Description.c_str());
  for (const CollectiveSuggestion &S : Report.Suggestions)
    std::printf("  optimize: use %-28s (%s)\n", S.Collective.c_str(),
                S.Description.c_str());
  if (!Report.ShareableConstants.empty()) {
    std::printf("\nshareable read-only data (identical on every "
                "process):\n");
    for (const auto &[Var, Value] : Report.ShareableConstants)
      std::printf("  %s == %lld\n", Var.c_str(),
                  static_cast<long long>(Value));
  }

  if (!R.PrintFacts.empty()) {
    std::printf("\nprint facts:\n");
    for (const PrintFact &F : R.PrintFacts) {
      if (F.Value)
        std::printf("  %s prints constant %lld at %s\n", F.SetRange.c_str(),
                    static_cast<long long>(*F.Value),
                    Graph.nodeLabel(F.Node).c_str());
      else
        std::printf("  %s prints unknown value at %s\n", F.SetRange.c_str(),
                    Graph.nodeLabel(F.Node).c_str());
    }
  }
  if (!R.Bugs.empty()) {
    std::printf("\nbug candidates:\n");
    for (const AnalysisBug &B : R.Bugs) {
      if (B.Loc.isValid())
        std::printf("  [%s] %s: %s\n", analysisBugKindName(B.TheKind),
                    B.Loc.str().c_str(), B.Detail.c_str());
      else
        std::printf("  [%s] %s\n", analysisBugKindName(B.TheKind),
                    B.Detail.c_str());
    }
  }

  if (Cli.Stats)
    printStats();
  if (Cli.Validate) {
    RunResult Run = execute(Graph, Cli);
    ValidationReport Report = validateTopology(R, Run);
    std::printf("\nvalidation (np=%d): %s\n", Cli.Np,
                Report.str(Graph).c_str());
    return R.Converged && Report.Exact ? 0 : 1;
  }
  return R.Converged ? 0 : 1;
}

DiagSeverity severityFromName(const std::string &Name) {
  if (Name == "error")
    return DiagSeverity::Error;
  if (Name == "warning")
    return DiagSeverity::Warning;
  return DiagSeverity::Note;
}

int cmdLint(const std::string &Source, const CliOptions &Cli) {
  LintOptions Opts;
  Opts.Disabled = Cli.Disabled;
  Opts.Analysis = analysisOptions(Cli);

  if (Cli.Stats)
    StatsRegistry::global().clear();
  DiagnosticEngine Diags;
  lintSource(Source, Opts, Diags);
  if (Cli.Stats)
    printStats();
  if (Cli.Werror)
    Diags.promoteWarningsToErrors();
  Diags.filterBelow(severityFromName(Cli.MinSeverity));

  std::string Out;
  if (Cli.Format == "json")
    Out = renderDiagsJson(Diags.diagnostics(), Cli.File);
  else if (Cli.Format == "sarif")
    Out = renderDiagsSarif(Diags.diagnostics(), Cli.File,
                           lintRuleDescriptions());
  else
    Out = renderDiagsText(Diags.diagnostics(), Cli.File, Source);
  std::fputs(Out.c_str(), stdout);

  if (Cli.Format == "text" && !Diags.empty())
    std::printf("%zu finding(s): %u error(s), %u warning(s), %u note(s)\n",
                Diags.size(), Diags.count(DiagSeverity::Error),
                Diags.count(DiagSeverity::Warning),
                Diags.count(DiagSeverity::Note));
  return Diags.exitCode();
}

int cmdListPasses() {
  for (const LintPassInfo &P : lintPassRegistry())
    std::printf("%-18s %s\n", P.Name.c_str(), P.Description.c_str());
  return 0;
}

int cmdBaseline(const Cfg &Graph) {
  MpiCfgResult R = buildMpiCfg(Graph);
  std::printf("MPI-CFG: %u all-pairs edges, %u pruned by tag, %u pruned by "
              "shift, %zu kept:\n",
              R.InitialEdges, R.PrunedByTag, R.PrunedByShift,
              R.Edges.size());
  for (const auto &[S, Rv] : R.Edges)
    std::printf("  %-30s -> %s\n", Graph.nodeLabel(S).c_str(),
                Graph.nodeLabel(Rv).c_str());
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Cli;
  if (!parseArgs(Argc, Argv, Cli)) {
    usage();
    return 2;
  }

  if (Cli.Command == "lint" && Cli.File == "--list-passes")
    return cmdListPasses();

  auto Source = readFile(Cli.File);
  if (!Source) {
    std::fprintf(stderr, "error: cannot read '%s'\n", Cli.File.c_str());
    return 2;
  }

  // Lint owns its whole pipeline (parse errors become diagnostics in the
  // selected output format rather than raw stderr lines).
  if (Cli.Command == "lint")
    return cmdLint(*Source, Cli);

  ParseResult Parsed = parseProgram(*Source);
  if (!Parsed.succeeded()) {
    for (const ParseDiagnostic &D : Parsed.Diagnostics)
      std::fprintf(stderr, "%s: %s\n", Cli.File.c_str(), D.str().c_str());
    return 1;
  }
  SemaResult Sema = checkProgram(Parsed.Prog);
  for (const SemaDiagnostic &D : Sema.Diagnostics)
    std::fprintf(stderr, "%s: %s\n", Cli.File.c_str(), D.str().c_str());
  if (Sema.hasErrors())
    return 1;

  if (Cli.Command == "check") {
    std::printf("%s: ok\n", Cli.File.c_str());
    return 0;
  }

  Cfg Graph = buildCfg(Parsed.Prog);
  if (Cli.Command == "cfg") {
    std::fputs(cfgToDot(Graph, "cfg").c_str(), stdout);
    return 0;
  }
  if (Cli.Command == "run")
    return cmdRun(Graph, Cli);
  if (Cli.Command == "analyze")
    return cmdAnalyze(Graph, Cli);
  if (Cli.Command == "baseline")
    return cmdBaseline(Graph);
  if (Cli.Command == "topo") {
    AnalysisResult R = analyzeProgram(Graph, analysisOptions(Cli));
    std::fputs(topologyToDot(Graph, R, "topology").c_str(), stdout);
    return R.Converged ? 0 : 1;
  }
  usage();
  return 2;
}
